// System: the distributed DELP runtime (§3.1). One Program runs at every
// node of a Topology; events injected at a node trigger rules by pipelined
// semi-naïve evaluation, and derived head tuples travel as network messages
// to the node named by their location specifier. A ProvenanceRecorder
// observes every injection / rule firing / output and maintains the
// provenance storage under its scheme.
#ifndef DPC_RUNTIME_SYSTEM_H_
#define DPC_RUNTIME_SYSTEM_H_

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/analysis/planner.h"
#include "src/core/recorder.h"
#include "src/db/intern.h"
#include "src/db/table.h"
#include "src/ndlog/eval.h"
#include "src/ndlog/program.h"
#include <atomic>

#include "src/net/event_queue.h"
#include "src/net/network.h"
#include "src/runtime/replay.h"
#include "src/util/result.h"

namespace dpc {

class ShardEngine;

// A terminal output tuple together with the provenance metadata it arrived
// with (used by tests and provenance queries).
struct OutputRecord {
  Tuple tuple;
  ProvMeta meta;
  SimTime time = 0;
};

struct SystemStats {
  uint64_t events_injected = 0;
  uint64_t rule_firings = 0;
  uint64_t outputs = 0;
  uint64_t control_signals = 0;
};

class System {
 public:
  // All pointers must outlive the System. The recorder may be null (run
  // without provenance). `channel` is the message path between nodes —
  // the raw (lossy) Network, or a ReliableTransport layered over it when
  // the deployment must survive injected faults.
  System(const Program* program, const Topology* topology,
         MessageChannel* channel, EventQueue* queue,
         FunctionRegistry functions, ProvenanceRecorder* recorder);

  // Runs this System on a sharded parallel engine (src/net/shard_engine.h):
  // injections route to the owning shard's queue and Run/RunUntil drive
  // conservative windows instead of `queue`. Call before the first
  // ScheduleInject/Run; the engine must outlive the System. The channel
  // must be bound to the same engine (Network::BindShardEngine) so
  // deliveries execute on the destination node's shard.
  void BindShardEngine(ShardEngine* engine) { engine_ = engine; }

  // --- state management -----------------------------------------------

  // Inserts a slow-changing (base) tuple into its node's database. If the
  // recorder requests it (§5.5), broadcasts a sig control message.
  Status InsertSlowTuple(const Tuple& t);
  Status DeleteSlowTuple(const Tuple& t);

  // --- execution --------------------------------------------------------

  // Schedules the injection of `event` (a tuple of the program's input
  // event relation, located at its injection node) at simulated time
  // `when`.
  Status ScheduleInject(const Tuple& event, SimTime when);

  // Runs the simulation until the queue(s) drain (bounded by `max_events`).
  void Run(size_t max_events = 0);
  void RunUntil(SimTime t);

  // --- observation -------------------------------------------------------

  Database& DbAt(NodeId node) { return dbs_[node]; }
  const Database& DbAt(NodeId node) const { return dbs_[node]; }

  const std::vector<OutputRecord>& OutputsAt(NodeId node) const {
    return outputs_[node];
  }
  std::vector<OutputRecord> AllOutputs() const;

  // Invoked on every terminal output (after the recorder hook).
  void SetOutputCallback(std::function<void(NodeId, const OutputRecord&)> cb) {
    output_callback_ = std::move(cb);
  }

  // When set, every non-deterministic input (slow-table operation, event
  // injection) is appended to `log` for §3.2-style replay. Must outlive
  // the System.
  void SetReplayLog(ReplayLog* log) { replay_log_ = log; }

  // When enabled, tuples deserialized from incoming messages are interned:
  // repeated identical deliveries share one allocation (and its memoized
  // identities) instead of re-hashing per arrival. Off by default — unique
  // per-event workloads gain nothing from pooling.
  void EnableInterning(bool enabled) { interning_enabled_ = enabled; }
  const TupleInterner& interner() const { return interner_; }

  // Toggles set-at-a-time batch evaluation (on by default): same-instant,
  // same-(node, relation) events drain into one batch whose rules are
  // evaluated once per batch (src/runtime/batch_eval.h), with firings,
  // recorder hooks and sends emitted in exactly the tuple-at-a-time order
  // — provenance bytes, storage accounting and query answers are
  // byte-identical either way (docs/perf.md).
  void SetBatchEval(bool enabled) { batch_eval_ = enabled; }
  bool batch_eval() const { return batch_eval_; }

  // Processes one incoming message as the channel's delivery handler
  // does. Public so tests can feed arbitrary peer bytes straight at the
  // runtime: a malformed event payload (undecodable tuple/meta, missing
  // integer location) returns InvalidArgument — counted under
  // "system.malformed_messages" — and never aborts the node.
  Status HandleMessage(const Message& msg);

  // Snapshot of the run counters. By value: the internal counters are
  // atomics bumped from shard workers, and a struct copy of them taken
  // while idle (or between windows) is exact.
  SystemStats stats() const {
    SystemStats s;
    s.events_injected = stats_.events_injected.load(std::memory_order_relaxed);
    s.rule_firings = stats_.rule_firings.load(std::memory_order_relaxed);
    s.outputs = stats_.outputs.load(std::memory_order_relaxed);
    s.control_signals = stats_.control_signals.load(std::memory_order_relaxed);
    return s;
  }
  const Program& program() const { return *program_; }
  // The statically compiled evaluation plan (one RulePlan per program
  // rule, in rule order) that ProcessEvent executes via FireRulePlanned.
  const ProgramPlan& plan() const { return plan_; }
  const FunctionRegistry& functions() const { return functions_; }
  ProvenanceRecorder* recorder() const { return recorder_; }
  const Topology& topology() const { return *topology_; }
  EventQueue& queue() { return *queue_; }

 private:
  // One same-instant batch member awaiting deferred processing: the event
  // plus everything Phase B needs to replay its hooks in original order.
  struct PendingEvent {
    TupleRef tuple;
    ProvMeta meta;    // arrival meta; unused for injections
    bool is_arrival;  // false: injection (OnInject produces the meta)
  };

  // Shared entry for injected and delivered trigger events. Appends to the
  // active batch collector when one is draining, starts a batch when the
  // queue's next entry carries the same tag, and otherwise processes the
  // event tuple-at-a-time.
  void Dispatch(NodeId node, const TupleRef& tuple, const ProvMeta& meta,
                bool is_arrival, uint64_t tag);
  bool TryProcessBatch(NodeId node, const TupleRef& tuple,
                       const ProvMeta& meta, bool is_arrival, uint64_t tag);
  // Phase A: per-rule set-at-a-time evaluation (pure; reads dbs_ only).
  // Phase B: per event in batch order, pre-hooks then firing emission —
  // the exact tuple-at-a-time sequence of recorder calls and sends.
  void ProcessBatch(NodeId node, std::vector<PendingEvent>& batch);
  // OnArrival (arrivals) / OnInject (injections, returns the meta).
  ProvMeta RunEventHook(NodeId node, const TupleRef& tuple,
                        const ProvMeta& meta, bool is_arrival);
  // Routes one rule firing: counters, head validation, OnRuleFired, then
  // send/output. Shared by ProcessEvent and ProcessBatch so emission is
  // identical byte-for-byte on both paths.
  void EmitFiring(NodeId node, const Rule& rule, const TupleRef& tuple,
                  const ProvMeta& meta, RuleFiring& f);
  // Batch tag for deliveries of `relation` at `node`; 0 when the relation
  // is not statically batchable or batching is off.
  uint64_t BatchTagFor(NodeId node, const std::string& relation) const;

  void ProcessEvent(NodeId node, const TupleRef& tuple, const ProvMeta& meta);
  void EmitOutput(NodeId node, const TupleRef& tuple, const ProvMeta& meta);
  void SendEvent(NodeId from, const TupleRef& tuple, const ProvMeta& meta);
  std::vector<uint8_t> EncodeEventPayload(const Tuple& tuple,
                                          const ProvMeta& meta) const;
  // Simulated time at `node`'s shard (== queue_->now() unsharded). Inside
  // an event callback at `node` this is the executing event's time.
  SimTime NowFor(NodeId node) const;
  // Barrier/global time when sharded, queue time otherwise (idle-only).
  SimTime GlobalNow() const;

  const Program* program_;
  ProgramPlan plan_;
  const Topology* topology_;
  MessageChannel* channel_;
  EventQueue* queue_;
  FunctionRegistry functions_;
  ProvenanceRecorder* recorder_;

  ReplayLog* replay_log_ = nullptr;
  bool interning_enabled_ = false;
  bool batch_eval_ = true;
  TupleInterner interner_;
  ShardEngine* engine_ = nullptr;
  // Statically batchable trigger relations -> tag ordinal (>= 1), computed
  // once at construction. A trigger relation is batchable when no
  // triggered rule derives a head that is a condition relation of a
  // triggered rule — otherwise a same-instant local output could be
  // visible to later batch members under tuple-at-a-time evaluation but
  // not under a pre-collected batch. Read-only after the constructor.
  std::map<std::string, uint64_t> batch_relation_ids_;
  // The batch collector active on this thread, if any: DrainAtTime runs
  // peers' queue entries whose Dispatch must append here instead of
  // processing. Thread-local because shard workers batch independently.
  static thread_local std::vector<PendingEvent>* tls_collector_;
  static thread_local System* tls_collector_owner_;
  // Per-node state: confined to the shard owning the node (one thread at
  // a time; the engine's barriers order cross-window handoffs).
  std::vector<Database> dbs_;
  std::vector<std::vector<OutputRecord>> outputs_;
  // Invoked from the emitting node's shard thread: must be thread-safe
  // when running sharded.
  std::function<void(NodeId, const OutputRecord&)> output_callback_;
  // Atomics: bumped concurrently from shard workers, lost-update-free.
  struct AtomicSystemStats {
    std::atomic<uint64_t> events_injected{0};
    std::atomic<uint64_t> rule_firings{0};
    std::atomic<uint64_t> outputs{0};
    std::atomic<uint64_t> control_signals{0};
  };
  AtomicSystemStats stats_;

  // Registry mirrors of stats_ (per-node scoped), resolved once at
  // construction; see src/obs/metrics.h.
  struct {
    Counter* events_injected;
    Counter* rule_firings;
    Counter* outputs;
    Counter* control_signals;
    Counter* malformed_messages;
    Counter* invalid_heads;
    Histogram* batch_size;
  } metrics_;
  // Firings produced via the batched path, one counter per program rule
  // ("system.batched_firings.<rule id>"), indexed by rule position.
  std::vector<Counter*> batched_firings_counters_;
  Tracer* tracer_;
};

}  // namespace dpc

#endif  // DPC_RUNTIME_SYSTEM_H_
