// Set-at-a-time rule evaluation over a batch of same-relation events
// (ROADMAP item 2; the VLog RuleExecutor idea adapted to the planned
// evaluator). The runtime drains every same-(node, relation) event
// scheduled at one simulated instant (EventQueue::DrainAtTime) and
// evaluates each compiled RulePlan once over the whole batch instead of
// once per tuple:
//
//   * one PlanExecutor per (rule, batch) amortizes the bindings map,
//     trail, join scratch and probe-key buffers across every event;
//   * when the plan's first probe key reads straight off the event tuple
//     (RulePlan::batch_first_key), events are hashed and chained into
//     same-key groups (O(n), no sort), and each distinct key's index
//     bucket is fetched once and shared by the whole group
//     (Table::CollectFromIndex) — the per-tuple key build, hash and
//     bucket lookup leave the inner loop entirely;
//   * content-identical events within a group evaluate once: evaluation
//     is a pure function of (event content, database), so a duplicate's
//     result is the representative's, recorded by reference (`same_as`)
//     rather than recomputed or deep-copied;
//   * results come back per event, in the batch's original order, so the
//     caller can emit firings, recorder hooks and sends in exactly the
//     tuple-at-a-time sequence (the determinism contract, docs/perf.md).
//
// FireRuleBatched(events)[i] is equivalent — firings, order, and status —
// to FireRulePlanned(events[i]) for every i: evaluation is pure (it reads
// the database and writes nothing), so factoring it out of the per-event
// loop cannot change any single event's result.
#ifndef DPC_RUNTIME_BATCH_EVAL_H_
#define DPC_RUNTIME_BATCH_EVAL_H_

#include <vector>

#include "src/analysis/planner.h"
#include "src/ndlog/eval.h"

namespace dpc {

// One batch member's evaluation result: the firings the event produced
// under the rule (possibly none) and the per-(event, rule) status —
// errors stay confined to the event that caused them, exactly as in
// tuple-at-a-time evaluation.
struct BatchEventFirings {
  Status status;
  std::vector<RuleFiring> firings;
  // Memoized duplicate: when >= 0, this event was content-identical to
  // batch member `same_as` and its logical firings are that entry's
  // (evaluation is pure, so identical events have identical results).
  // `firings` is left empty here; `status` is still this entry's own
  // (copied from the representative). Resolve with FiringsOf.
  int32_t same_as = -1;
  // Set on a representative some later duplicate points at. Consumers
  // that destructively move out of `firings` must copy when this is set
  // (the duplicates still need the originals).
  bool shared = false;
};

// The logical firings of batch member `i`, following `same_as` when the
// entry is a memoized duplicate (at most one hop: representatives are
// first occurrences and never duplicates themselves).
inline const std::vector<RuleFiring>& FiringsOf(
    const std::vector<BatchEventFirings>& all, size_t i) {
  const BatchEventFirings& r = all[i];
  return r.same_as >= 0 ? all[static_cast<size_t>(r.same_as)].firings
                        : r.firings;
}

// Evaluates `rule` under `plan` (compiled from it) for every event of a
// same-relation batch. Returns one entry per event, aligned with
// `events`; entry i matches FireRulePlanned(rule, plan, *events[i], ...)
// in firings, firing order, and status. The database must not change for
// the duration of the call (the caller defers all emission to afterwards).
std::vector<BatchEventFirings> FireRuleBatched(
    const Rule& rule, const RulePlan& plan,
    const std::vector<const Tuple*>& events, const Database& db,
    const FunctionRegistry& fns);

}  // namespace dpc

#endif  // DPC_RUNTIME_BATCH_EVAL_H_
