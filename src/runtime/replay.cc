#include "src/runtime/replay.h"

#include "src/core/reference_recorder.h"
#include "src/runtime/system.h"
#include "src/util/logging.h"

namespace dpc {

void ReplayLog::Append(Kind kind, double time, const Tuple& t) {
  entries_.push_back(Entry{kind, time, t});
  bytes_ += 1 + 8 + t.SerializedSize();  // kind + time + tuple
}

void ReplayLog::Serialize(ByteWriter& w) const {
  w.PutVarint(entries_.size());
  for (const Entry& e : entries_) {
    w.PutU8(static_cast<uint8_t>(e.kind));
    // Times are encoded as microseconds to stay integral.
    w.PutVarintSigned(static_cast<int64_t>(e.time * 1e6));
    e.tuple.Serialize(w);
  }
}

Result<ReplayLog> ReplayLog::Deserialize(ByteReader& r) {
  ReplayLog log;
  DPC_ASSIGN_OR_RETURN(uint64_t n, r.GetVarint());
  for (uint64_t i = 0; i < n; ++i) {
    DPC_ASSIGN_OR_RETURN(uint8_t kind, r.GetU8());
    if (kind > static_cast<uint8_t>(Kind::kInject)) {
      return Status::ParseError("bad replay entry kind");
    }
    DPC_ASSIGN_OR_RETURN(int64_t micros, r.GetVarintSigned());
    DPC_ASSIGN_OR_RETURN(Tuple tuple, Tuple::Deserialize(r));
    log.Append(static_cast<Kind>(kind), static_cast<double>(micros) / 1e6,
               tuple);
  }
  return log;
}

Replayer::Replayer(const Program* program, const Topology* topology)
    : program_(program), topology_(topology) {
  DPC_CHECK(program_ != nullptr);
  DPC_CHECK(topology_ != nullptr);
}

Result<std::vector<ProvTree>> Replayer::AllTrees(const ReplayLog& log) const {
  EventQueue queue;
  Network network(topology_, &queue);
  ReferenceRecorder recorder(topology_->num_nodes());
  System system(program_, topology_, &network, &queue, DefaultFunctions(),
                &recorder);

  // Apply the log in time order: slow-changing operations execute at their
  // recorded instants (so mid-stream updates replay faithfully), events
  // re-inject at their original times.
  for (const ReplayLog::Entry& entry : log.entries()) {
    switch (entry.kind) {
      case ReplayLog::Kind::kSlowInsert:
        queue.ScheduleAt(entry.time, [&system, t = entry.tuple]() {
          Status st = system.InsertSlowTuple(t);
          DPC_CHECK(st.ok()) << st.ToString();
        });
        break;
      case ReplayLog::Kind::kSlowDelete:
        queue.ScheduleAt(entry.time, [&system, t = entry.tuple]() {
          Status st = system.DeleteSlowTuple(t);
          if (!st.ok()) {
            DPC_LOG(Warning) << "replayed deletion failed: " << st.ToString();
          }
        });
        break;
      case ReplayLog::Kind::kInject: {
        DPC_RETURN_NOT_OK(system.ScheduleInject(entry.tuple, entry.time));
        break;
      }
    }
  }
  system.Run();

  std::vector<ProvTree> trees;
  for (const ProvTree* tree : recorder.AllTrees()) trees.push_back(*tree);
  return trees;
}

Result<std::vector<ProvTree>> Replayer::ProvenanceOf(
    const ReplayLog& log, const Tuple& target) const {
  DPC_ASSIGN_OR_RETURN(std::vector<ProvTree> all, AllTrees(log));

  std::vector<ProvTree> out;
  for (const ProvTree& tree : all) {
    // The target may be any head along the chain: cut the prefix that
    // derives it.
    for (size_t i = 0; i < tree.steps().size(); ++i) {
      if (tree.steps()[i].head != target) continue;
      ProvTree prefix(tree.event(),
                      std::vector<ProvStep>(tree.steps().begin(),
                                            tree.steps().begin() + i + 1));
      if (std::find(out.begin(), out.end(), prefix) == out.end()) {
        out.push_back(std::move(prefix));
      }
    }
  }
  if (out.empty()) {
    return Status::NotFound("replay never derived " + target.ToString());
  }
  return out;
}

}  // namespace dpc
