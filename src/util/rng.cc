#include "src/util/rng.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace dpc {

namespace {

uint64_t SplitMix64(uint64_t& state) {
  uint64_t z = (state += 0x9E3779B97F4A7C15ULL);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

inline uint64_t RotL(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& s : s_) s = SplitMix64(sm);
}

uint64_t Rng::Next() {
  // xoshiro256**
  uint64_t result = RotL(s_[1] * 5, 7) * 9;
  uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = RotL(s_[3], 45);
  return result;
}

uint64_t Rng::NextBelow(uint64_t n) {
  assert(n > 0);
  // Rejection sampling to avoid modulo bias.
  uint64_t threshold = (0 - n) % n;
  while (true) {
    uint64_t r = Next();
    if (r >= threshold) return r % n;
  }
}

int64_t Rng::NextInRange(int64_t lo, int64_t hi) {
  assert(lo <= hi);
  return lo + static_cast<int64_t>(
                  NextBelow(static_cast<uint64_t>(hi - lo) + 1));
}

double Rng::NextDouble() {
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

ZipfGenerator::ZipfGenerator(size_t n, double theta, uint64_t seed)
    : rng_(seed), cdf_(n) {
  assert(n > 0);
  double sum = 0;
  for (size_t k = 0; k < n; ++k) {
    sum += 1.0 / std::pow(static_cast<double>(k + 1), theta);
    cdf_[k] = sum;
  }
  for (size_t k = 0; k < n; ++k) cdf_[k] /= sum;
  cdf_.back() = 1.0;
}

size_t ZipfGenerator::Next() {
  double u = rng_.NextDouble();
  auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  if (it == cdf_.end()) --it;
  return static_cast<size_t>(it - cdf_.begin());
}

}  // namespace dpc
