// From-scratch SHA-1 (FIPS 180-1). The paper's storage model identifies
// tuples (VIDs) and rule executions (RIDs) by SHA-1 digests; we reproduce
// that faithfully so serialized table sizes match the paper's accounting.
#ifndef DPC_UTIL_SHA1_H_
#define DPC_UTIL_SHA1_H_

#include <array>
#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>

namespace dpc {

// A 160-bit SHA-1 digest. Hashable and totally ordered so it can key
// standard containers.
struct Sha1Digest {
  std::array<uint8_t, 20> bytes{};

  bool operator==(const Sha1Digest& other) const = default;
  auto operator<=>(const Sha1Digest& other) const = default;

  // First 8 bytes as a little-endian integer; used as a cheap in-memory
  // hash-table key. The full digest is what gets serialized.
  uint64_t Prefix64() const;

  // Lowercase hex, e.g. "da39a3ee...". `truncate` limits the output to the
  // first `truncate` bytes (0 = full digest) for compact display.
  std::string ToHex(size_t truncate = 0) const;

  bool IsZero() const;
};

// Incremental SHA-1 hasher.
class Sha1 {
 public:
  Sha1();

  // Appends `data` to the message.
  void Update(const void* data, size_t len);
  void Update(std::string_view sv) { Update(sv.data(), sv.size()); }

  // Finalizes and returns the digest. The hasher must not be reused
  // afterwards without calling Reset().
  Sha1Digest Finish();

  void Reset();

  // One-shot convenience.
  static Sha1Digest Hash(std::string_view data);
  static Sha1Digest Hash(const void* data, size_t len);

 private:
  void ProcessBlock(const uint8_t* block);

  uint32_t h_[5];
  uint64_t total_len_ = 0;
  uint8_t buffer_[64];
  size_t buffer_len_ = 0;
};

// std::hash support for Sha1Digest.
struct Sha1DigestHash {
  size_t operator()(const Sha1Digest& d) const {
    return static_cast<size_t>(d.Prefix64());
  }
};

}  // namespace dpc

#endif  // DPC_UTIL_SHA1_H_
