// Minimal leveled logging + check macros. Hot paths use DPC_DCHECK (debug
// only); invariant violations in release builds abort with a message.
#ifndef DPC_UTIL_LOGGING_H_
#define DPC_UTIL_LOGGING_H_

#include <cstdlib>
#include <iostream>
#include <sstream>

namespace dpc {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

// Global minimum level; messages below it are discarded.
LogLevel GetLogLevel();
void SetLogLevel(LogLevel level);

namespace internal {

class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  std::ostream& stream() { return stream_; }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

class FatalMessage {
 public:
  FatalMessage(const char* file, int line, const char* expr);
  [[noreturn]] ~FatalMessage();

  std::ostream& stream() { return stream_; }

 private:
  std::ostringstream stream_;
};

// Swallows the streamed expression when a log statement is compiled out.
struct NullStream {
  template <typename T>
  NullStream& operator<<(const T&) {
    return *this;
  }
};

}  // namespace internal
}  // namespace dpc

#define DPC_LOG(level)                                                 \
  if (::dpc::LogLevel::k##level < ::dpc::GetLogLevel()) {              \
  } else                                                               \
    ::dpc::internal::LogMessage(::dpc::LogLevel::k##level, __FILE__,   \
                                __LINE__)                              \
        .stream()

#define DPC_CHECK(cond)                                              \
  if (cond) {                                                        \
  } else                                                             \
    ::dpc::internal::FatalMessage(__FILE__, __LINE__, #cond).stream()

#ifdef NDEBUG
#define DPC_DCHECK(cond) \
  if (true) {            \
  } else                 \
    ::dpc::internal::NullStream()
#else
#define DPC_DCHECK(cond) DPC_CHECK(cond)
#endif

#endif  // DPC_UTIL_LOGGING_H_
