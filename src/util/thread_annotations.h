// Clang Thread Safety Analysis annotations and the annotated mutex the
// rest of the tree locks with. The sharded runtime (ROADMAP item 1) will
// run recorder hooks, metrics, tracing and tuple identity from many worker
// threads; these macros let clang prove at compile time that every access
// to shared mutable state holds the right lock (`-Wthread-safety`,
// promoted to an error on clang builds — see the top-level CMakeLists).
// On GCC and other compilers the annotations expand to nothing and
// dpc::Mutex is a zero-cost veneer over std::mutex.
//
// The contract table — which object is guarded by which lock and which
// future shard threads touch it — lives in docs/concurrency.md.
#ifndef DPC_UTIL_THREAD_ANNOTATIONS_H_
#define DPC_UTIL_THREAD_ANNOTATIONS_H_

#include <mutex>

#if defined(__clang__)
#define DPC_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define DPC_THREAD_ANNOTATION(x)
#endif

// A type that acts as a lock (dpc::Mutex below).
#define DPC_CAPABILITY(x) DPC_THREAD_ANNOTATION(capability(x))
// A RAII type that acquires in its constructor, releases in its destructor.
#define DPC_SCOPED_CAPABILITY DPC_THREAD_ANNOTATION(scoped_lockable)

// Data members: reads and writes require holding `x`.
#define DPC_GUARDED_BY(x) DPC_THREAD_ANNOTATION(guarded_by(x))
// Pointer members: the pointee (not the pointer) is guarded by `x`.
#define DPC_PT_GUARDED_BY(x) DPC_THREAD_ANNOTATION(pt_guarded_by(x))

// Functions: the caller must hold / must not hold the given locks.
#define DPC_REQUIRES(...) \
  DPC_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))
#define DPC_EXCLUDES(...) DPC_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))

// Functions that acquire / release locks themselves.
#define DPC_ACQUIRE(...) \
  DPC_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))
#define DPC_RELEASE(...) \
  DPC_THREAD_ANNOTATION(release_capability(__VA_ARGS__))

// Escape hatch for code the analysis cannot follow (use sparingly and say
// why at the use site).
#define DPC_NO_THREAD_SAFETY_ANALYSIS \
  DPC_THREAD_ANNOTATION(no_thread_safety_analysis)

namespace dpc {

// std::mutex with the capability annotation clang's analysis needs
// (libstdc++'s std::mutex carries no annotations, so locking it directly
// is invisible to the checker). Lock through MutexLock below so scopes
// stay balanced by construction.
class DPC_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() DPC_ACQUIRE() { mu_.lock(); }
  void Unlock() DPC_RELEASE() { mu_.unlock(); }

 private:
  std::mutex mu_;
};

// RAII lock over dpc::Mutex, visible to the analysis as a scoped
// capability: the lock is held exactly for the enclosing scope.
class DPC_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) DPC_ACQUIRE(mu) : mu_(mu) { mu_.Lock(); }
  ~MutexLock() DPC_RELEASE() { mu_.Unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mu_;
};

}  // namespace dpc

#endif  // DPC_UTIL_THREAD_ANNOTATIONS_H_
