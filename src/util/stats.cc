#include "src/util/stats.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstdio>
#include <numeric>

namespace dpc {

Cdf::Cdf(std::vector<double> samples) : sorted_(std::move(samples)) {
  std::sort(sorted_.begin(), sorted_.end());
}

double Cdf::FractionAtOrBelow(double x) const {
  if (sorted_.empty()) return 0;
  auto it = std::upper_bound(sorted_.begin(), sorted_.end(), x);
  return static_cast<double>(it - sorted_.begin()) /
         static_cast<double>(sorted_.size());
}

double Cdf::Quantile(double q) const {
  assert(!sorted_.empty());
  q = std::clamp(q, 0.0, 1.0);
  size_t rank = static_cast<size_t>(
      std::ceil(q * static_cast<double>(sorted_.size())));
  if (rank > 0) --rank;
  return sorted_[std::min(rank, sorted_.size() - 1)];
}

double Cdf::Min() const {
  assert(!sorted_.empty());
  return sorted_.front();
}

double Cdf::Max() const {
  assert(!sorted_.empty());
  return sorted_.back();
}

double Cdf::Mean() const {
  if (sorted_.empty()) return 0;
  return std::accumulate(sorted_.begin(), sorted_.end(), 0.0) /
         static_cast<double>(sorted_.size());
}

std::vector<std::pair<double, double>> Cdf::Curve(size_t points) const {
  std::vector<std::pair<double, double>> out;
  if (sorted_.empty() || points < 2) return out;
  double lo = Min(), hi = Max();
  for (size_t i = 0; i < points; ++i) {
    double x = lo + (hi - lo) * static_cast<double>(i) /
                        static_cast<double>(points - 1);
    out.emplace_back(x, FractionAtOrBelow(x));
  }
  return out;
}

double TimeSeries::GrowthRate() const {
  assert(times.size() >= 2);
  double n = static_cast<double>(times.size());
  double sum_t = std::accumulate(times.begin(), times.end(), 0.0);
  double sum_v = std::accumulate(values.begin(), values.end(), 0.0);
  double sum_tt = 0, sum_tv = 0;
  for (size_t i = 0; i < times.size(); ++i) {
    sum_tt += times[i] * times[i];
    sum_tv += times[i] * values[i];
  }
  double denom = n * sum_tt - sum_t * sum_t;
  if (denom == 0) return 0;
  return (n * sum_tv - sum_t * sum_v) / denom;
}

std::string FormatBytes(double bytes) {
  const char* units[] = {"B", "KB", "MB", "GB", "TB"};
  int u = 0;
  while (bytes >= 1024.0 && u < 4) {
    bytes /= 1024.0;
    ++u;
  }
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.2f %s", bytes, units[u]);
  return buf;
}

std::string FormatBitRate(double bits_per_sec) {
  const char* units[] = {"bps", "Kbps", "Mbps", "Gbps"};
  int u = 0;
  while (bits_per_sec >= 1000.0 && u < 3) {
    bits_per_sec /= 1000.0;
    ++u;
  }
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.2f %s", bits_per_sec, units[u]);
  return buf;
}

}  // namespace dpc
