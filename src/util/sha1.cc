#include "src/util/sha1.h"

#include <cstring>

#include "src/util/perf.h"

namespace dpc {

namespace {

inline uint32_t RotL(uint32_t x, int n) { return (x << n) | (x >> (32 - n)); }

constexpr char kHexDigits[] = "0123456789abcdef";

}  // namespace

uint64_t Sha1Digest::Prefix64() const {
  uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<uint64_t>(bytes[i]) << (8 * i);
  }
  return v;
}

std::string Sha1Digest::ToHex(size_t truncate) const {
  size_t n = (truncate == 0 || truncate > bytes.size()) ? bytes.size()
                                                        : truncate;
  std::string out;
  out.reserve(2 * n);
  for (size_t i = 0; i < n; ++i) {
    out.push_back(kHexDigits[bytes[i] >> 4]);
    out.push_back(kHexDigits[bytes[i] & 0xf]);
  }
  return out;
}

bool Sha1Digest::IsZero() const {
  for (uint8_t b : bytes) {
    if (b != 0) return false;
  }
  return true;
}

Sha1::Sha1() { Reset(); }

void Sha1::Reset() {
  h_[0] = 0x67452301;
  h_[1] = 0xEFCDAB89;
  h_[2] = 0x98BADCFE;
  h_[3] = 0x10325476;
  h_[4] = 0xC3D2E1F0;
  total_len_ = 0;
  buffer_len_ = 0;
}

void Sha1::Update(const void* data, size_t len) {
  const uint8_t* p = static_cast<const uint8_t*>(data);
  total_len_ += len;
  if (buffer_len_ > 0) {
    size_t take = std::min(len, sizeof(buffer_) - buffer_len_);
    std::memcpy(buffer_ + buffer_len_, p, take);
    buffer_len_ += take;
    p += take;
    len -= take;
    if (buffer_len_ == sizeof(buffer_)) {
      ProcessBlock(buffer_);
      buffer_len_ = 0;
    }
  }
  while (len >= 64) {
    ProcessBlock(p);
    p += 64;
    len -= 64;
  }
  if (len > 0) {
    std::memcpy(buffer_, p, len);
    buffer_len_ = len;
  }
}

void Sha1::ProcessBlock(const uint8_t* block) {
  uint32_t w[80];
  for (int i = 0; i < 16; ++i) {
    w[i] = (static_cast<uint32_t>(block[4 * i]) << 24) |
           (static_cast<uint32_t>(block[4 * i + 1]) << 16) |
           (static_cast<uint32_t>(block[4 * i + 2]) << 8) |
           static_cast<uint32_t>(block[4 * i + 3]);
  }
  for (int i = 16; i < 80; ++i) {
    w[i] = RotL(w[i - 3] ^ w[i - 8] ^ w[i - 14] ^ w[i - 16], 1);
  }

  uint32_t a = h_[0], b = h_[1], c = h_[2], d = h_[3], e = h_[4];
  for (int i = 0; i < 80; ++i) {
    uint32_t f, k;
    if (i < 20) {
      f = (b & c) | ((~b) & d);
      k = 0x5A827999;
    } else if (i < 40) {
      f = b ^ c ^ d;
      k = 0x6ED9EBA1;
    } else if (i < 60) {
      f = (b & c) | (b & d) | (c & d);
      k = 0x8F1BBCDC;
    } else {
      f = b ^ c ^ d;
      k = 0xCA62C1D6;
    }
    uint32_t tmp = RotL(a, 5) + f + e + k + w[i];
    e = d;
    d = c;
    c = RotL(b, 30);
    b = a;
    a = tmp;
  }
  h_[0] += a;
  h_[1] += b;
  h_[2] += c;
  h_[3] += d;
  h_[4] += e;
}

Sha1Digest Sha1::Finish() {
  identity_cells().sha1_invocations.Bump();
  uint64_t bit_len = total_len_ * 8;
  // Padding: 0x80, zeros, then 64-bit big-endian bit length.
  uint8_t pad = 0x80;
  Update(&pad, 1);
  uint8_t zero = 0;
  while (buffer_len_ != 56) {
    Update(&zero, 1);
  }
  uint8_t len_bytes[8];
  for (int i = 0; i < 8; ++i) {
    len_bytes[i] = static_cast<uint8_t>(bit_len >> (56 - 8 * i));
  }
  // Write the length bytes directly: Update would perturb total_len_, which
  // no longer matters, but must not re-pad.
  std::memcpy(buffer_ + 56, len_bytes, 8);
  ProcessBlock(buffer_);
  buffer_len_ = 0;

  Sha1Digest digest;
  for (int i = 0; i < 5; ++i) {
    digest.bytes[4 * i] = static_cast<uint8_t>(h_[i] >> 24);
    digest.bytes[4 * i + 1] = static_cast<uint8_t>(h_[i] >> 16);
    digest.bytes[4 * i + 2] = static_cast<uint8_t>(h_[i] >> 8);
    digest.bytes[4 * i + 3] = static_cast<uint8_t>(h_[i]);
  }
  return digest;
}

Sha1Digest Sha1::Hash(std::string_view data) {
  return Hash(data.data(), data.size());
}

Sha1Digest Sha1::Hash(const void* data, size_t len) {
  Sha1 hasher;
  hasher.Update(data, len);
  return hasher.Finish();
}

}  // namespace dpc
