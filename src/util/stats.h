// Small statistics helpers for the evaluation harness: CDFs (the paper's
// Figures 8, 12, 13), percentiles, means, and time-series growth rates.
#ifndef DPC_UTIL_STATS_H_
#define DPC_UTIL_STATS_H_

#include <cstddef>
#include <string>
#include <vector>

namespace dpc {

// Empirical cumulative distribution over a sample set.
class Cdf {
 public:
  explicit Cdf(std::vector<double> samples);

  // Fraction of samples <= x, in [0, 1].
  double FractionAtOrBelow(double x) const;

  // Value at quantile q in [0, 1] (nearest-rank).
  double Quantile(double q) const;

  double Min() const;
  double Max() const;
  double Mean() const;
  double Median() const { return Quantile(0.5); }

  size_t size() const { return sorted_.size(); }
  const std::vector<double>& sorted_samples() const { return sorted_; }

  // Evenly spaced (value, fraction) points suitable for printing a CDF
  // curve; `points` >= 2.
  std::vector<std::pair<double, double>> Curve(size_t points) const;

 private:
  std::vector<double> sorted_;
};

// (time, value) series; used for storage-growth and bandwidth figures.
struct TimeSeries {
  std::vector<double> times;   // seconds
  std::vector<double> values;  // bytes, bytes/s, ...

  void Add(double t, double v) {
    times.push_back(t);
    values.push_back(v);
  }

  // Least-squares slope (value units per second). Requires >= 2 points.
  double GrowthRate() const;

  size_t size() const { return times.size(); }
};

// Formats a byte count as a human-readable string ("11.8 GB").
std::string FormatBytes(double bytes);

// Formats a rate in bits/second ("30.0 Mbps").
std::string FormatBitRate(double bits_per_sec);

}  // namespace dpc

#endif  // DPC_UTIL_STATS_H_
