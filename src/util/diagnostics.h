// Source-located diagnostics: the vocabulary shared by the NDlog front end
// and the static-analysis passes (src/analysis). A Diagnostic carries a
// severity, a stable machine-readable code (e.g. "E103"), a human message,
// a source location, and optional attached notes. Checkers accumulate
// diagnostics into a plain vector instead of bailing on the first failure.
#ifndef DPC_UTIL_DIAGNOSTICS_H_
#define DPC_UTIL_DIAGNOSTICS_H_

#include <cstddef>
#include <string>
#include <vector>

namespace dpc {

// A 1-based position in NDlog source text. line == 0 means "no location"
// (e.g. rules constructed programmatically via Program::FromRules).
struct SourceLoc {
  int line = 0;
  int column = 0;

  bool valid() const { return line > 0; }
  bool operator==(const SourceLoc&) const = default;
  auto operator<=>(const SourceLoc&) const = default;

  // "line L, column C"; "<unknown>" when invalid.
  std::string ToString() const;
};

enum class Severity {
  kNote,
  kWarning,
  kError,
};

// "note" / "warning" / "error".
const char* SeverityName(Severity severity);

struct Diagnostic {
  Severity severity = Severity::kError;
  std::string code;     // stable identifier, e.g. "E103" (see docs/analysis.md)
  std::string message;  // human-readable, no trailing newline
  SourceLoc loc;
  std::vector<Diagnostic> notes;  // attached context, severity kNote

  // "file:line:col: severity: message [code]" (file and location omitted
  // when absent). Notes render on their own indented lines.
  std::string ToString(const std::string& file = "") const;
};

// Appends a diagnostic and returns a reference to it (for attaching notes).
Diagnostic& AddDiag(std::vector<Diagnostic>& out, Severity severity,
                    std::string code, SourceLoc loc, std::string message);

size_t CountErrors(const std::vector<Diagnostic>& diags);
size_t CountWarnings(const std::vector<Diagnostic>& diags);

// Stable sort by (line, column, code); diagnostics without a location keep
// their relative order at the end. The code tie-break keeps rendered
// output deterministic across standard-library hash orderings.
void SortByLocation(std::vector<Diagnostic>& diags);

}  // namespace dpc

#endif  // DPC_UTIL_DIAGNOSTICS_H_
