// Result<T>: a value-or-Status type in the style of arrow::Result.
#ifndef DPC_UTIL_RESULT_H_
#define DPC_UTIL_RESULT_H_

#include <cassert>
#include <optional>
#include <utility>

#include "src/util/status.h"

namespace dpc {

template <typename T>
class Result {
 public:
  // Implicit conversions from both T and Status make `return value;` and
  // `return Status::...;` both work inside functions returning Result<T>.
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)
  Result(Status status)                          // NOLINT(runtime/explicit)
      : status_(std::move(status)) {
    assert(!status_.ok() && "Result constructed from OK status without value");
  }

  bool ok() const { return value_.has_value(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  // Returns the value, or `alt` if this Result holds an error.
  T ValueOr(T alt) const& { return ok() ? *value_ : std::move(alt); }

 private:
  Status status_;
  std::optional<T> value_;
};

}  // namespace dpc

// Assigns the value of a Result expression to `lhs`, or propagates its error.
#define DPC_ASSIGN_OR_RETURN_IMPL(tmp, lhs, rexpr) \
  auto tmp = (rexpr);                              \
  if (!tmp.ok()) return tmp.status();              \
  lhs = std::move(tmp).value();

#define DPC_ASSIGN_OR_RETURN(lhs, rexpr) \
  DPC_ASSIGN_OR_RETURN_IMPL(             \
      DPC_CONCAT_(_dpc_result_, __LINE__), lhs, rexpr)

#define DPC_CONCAT_INNER_(a, b) a##b
#define DPC_CONCAT_(a, b) DPC_CONCAT_INNER_(a, b)

#endif  // DPC_UTIL_RESULT_H_
