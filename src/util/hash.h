// FNV-1a: the cheap non-cryptographic 64-bit hash used for in-memory
// container keys (TupleHash, Table's join-index buckets). It folds the same
// canonical byte encoding that ByteWriter produces, but streams the bytes
// through the accumulator instead of materializing a buffer — so hashing a
// tuple for an unordered-container probe never allocates and never touches
// SHA-1. SHA-1 remains the identity for everything serialized (VIDs, RIDs):
// FNV hashes are in-memory only and must never enter the byte accounting.
#ifndef DPC_UTIL_HASH_H_
#define DPC_UTIL_HASH_H_

#include <cstddef>
#include <cstdint>
#include <string_view>

namespace dpc {

// Streaming FNV-1a accumulator whose Put* methods mirror ByteWriter's
// encodings (LEB128 varints, zigzag, length-prefixed strings). Feeding a
// value through Fnv1a produces the same hash as Fnv1a::HashBytes over the
// bytes ByteWriter would have written — a property the differential tests
// assert.
class Fnv1a {
 public:
  static constexpr uint64_t kOffset = 0xcbf29ce484222325ull;
  static constexpr uint64_t kPrime = 0x100000001b3ull;

  void PutByte(uint8_t b) { h_ = (h_ ^ b) * kPrime; }

  void PutBytes(const void* data, size_t len) {
    const uint8_t* p = static_cast<const uint8_t*>(data);
    for (size_t i = 0; i < len; ++i) PutByte(p[i]);
  }

  // Unsigned LEB128 varint, byte-for-byte as ByteWriter::PutVarint.
  void PutVarint(uint64_t v) {
    while (v >= 0x80) {
      PutByte(static_cast<uint8_t>(v) | 0x80);
      v >>= 7;
    }
    PutByte(static_cast<uint8_t>(v));
  }

  // Zigzag-encoded signed varint, as ByteWriter::PutVarintSigned.
  void PutVarintSigned(int64_t v) {
    PutVarint((static_cast<uint64_t>(v) << 1) ^ static_cast<uint64_t>(v >> 63));
  }

  // Length-prefixed byte string, as ByteWriter::PutString.
  void PutString(std::string_view sv) {
    PutVarint(sv.size());
    PutBytes(sv.data(), sv.size());
  }

  uint64_t hash() const { return h_; }

  // One-shot fold over a raw buffer.
  static uint64_t HashBytes(const void* data, size_t len) {
    Fnv1a f;
    f.PutBytes(data, len);
    return f.hash();
  }

 private:
  uint64_t h_ = kOffset;
};

}  // namespace dpc

#endif  // DPC_UTIL_HASH_H_
