// Lightweight process-wide counters for the tuple-identity hot path:
// SHA-1 digest computations, tuple bytes serialized, identity-cache hit
// rates, and intern-pool hits. The simulator is single-threaded, so plain
// uint64_t increments are safe; the counters are monotone and meant to be
// read as deltas (snapshot before a run, subtract after) — see
// ExperimentResult::identity in src/apps/experiments.h.
#ifndef DPC_UTIL_PERF_H_
#define DPC_UTIL_PERF_H_

#include <cstdint>

namespace dpc {

struct IdentityCounters {
  // SHA-1 Finish() calls, process-wide (VIDs, RIDs, content keys, ...).
  uint64_t sha1_invocations = 0;
  // Bytes appended by Tuple::Serialize (wire messages, digests, stores).
  uint64_t tuple_bytes_serialized = 0;
  // Tuple::Vid() calls answered from the memoized digest / computed fresh.
  uint64_t vid_cache_hits = 0;
  uint64_t vid_cache_misses = 0;
  // TupleInterner::Intern calls that found an existing pooled tuple.
  uint64_t tuples_interned = 0;

  IdentityCounters operator-(const IdentityCounters& o) const {
    IdentityCounters d;
    d.sha1_invocations = sha1_invocations - o.sha1_invocations;
    d.tuple_bytes_serialized = tuple_bytes_serialized - o.tuple_bytes_serialized;
    d.vid_cache_hits = vid_cache_hits - o.vid_cache_hits;
    d.vid_cache_misses = vid_cache_misses - o.vid_cache_misses;
    d.tuples_interned = tuples_interned - o.tuples_interned;
    return d;
  }
};

// The process-wide counter instance. Mutable by the hot paths; callers
// wanting a measurement window snapshot it and subtract.
IdentityCounters& identity_counters();

}  // namespace dpc

#endif  // DPC_UTIL_PERF_H_
