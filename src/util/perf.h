// Process-wide counters for the tuple-identity hot path: SHA-1 digest
// computations, tuple bytes serialized, identity-cache hit rates, and
// intern-pool hits. The counters are monotone and meant to be read as
// deltas (snapshot before a run, subtract after) — see
// ExperimentResult::identity in src/apps/experiments.h.
//
// Concurrency: each thread increments its own thread-local cell block
// (identity_cells()), so the hot path stays a plain load+store — no RMW,
// no lock prefix, no contention. identity_counters() aggregates every
// live thread's cells plus the totals retired by exited threads, so the
// sum is exact at any quiescent point and a consistent-enough estimate
// while increments are in flight. This is the pattern the sharded runtime
// (ROADMAP item 1) will inherit: per-worker cells, one aggregation at
// measurement boundaries.
#ifndef DPC_UTIL_PERF_H_
#define DPC_UTIL_PERF_H_

#include <atomic>
#include <cstdint>

namespace dpc {

// Aggregated snapshot of the identity counters (plain values; copyable,
// subtractable). This is the type measurement windows work with.
struct IdentityCounters {
  // SHA-1 Finish() calls, process-wide (VIDs, RIDs, content keys, ...).
  uint64_t sha1_invocations = 0;
  // Bytes appended by Tuple::Serialize (wire messages, digests, stores).
  uint64_t tuple_bytes_serialized = 0;
  // Tuple::Vid() calls answered from the memoized digest / computed fresh.
  uint64_t vid_cache_hits = 0;
  uint64_t vid_cache_misses = 0;
  // TupleInterner::Intern calls that found an existing pooled tuple.
  uint64_t tuples_interned = 0;

  IdentityCounters operator-(const IdentityCounters& o) const {
    IdentityCounters d;
    d.sha1_invocations = sha1_invocations - o.sha1_invocations;
    d.tuple_bytes_serialized = tuple_bytes_serialized - o.tuple_bytes_serialized;
    d.vid_cache_hits = vid_cache_hits - o.vid_cache_hits;
    d.vid_cache_misses = vid_cache_misses - o.vid_cache_misses;
    d.tuples_interned = tuples_interned - o.tuples_interned;
    return d;
  }
};

// A counter written only by its owning thread. The owner bumps with a
// plain load+store (no atomic RMW: single-writer, so no update is ever
// lost), while aggregators read the atomic cell concurrently without a
// data race.
class OwnedCounter {
 public:
  void Bump(uint64_t d = 1) {
    v_.store(v_.load(std::memory_order_relaxed) + d,
             std::memory_order_relaxed);
  }
  uint64_t load() const { return v_.load(std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> v_{0};
};

// One thread's private cell block. Constructed on first use per thread;
// the destructor folds the values into a process-wide retired total so an
// exited thread's work is never forgotten.
struct IdentityCells {
  OwnedCounter sha1_invocations;
  OwnedCounter tuple_bytes_serialized;
  OwnedCounter vid_cache_hits;
  OwnedCounter vid_cache_misses;
  OwnedCounter tuples_interned;

  // Tag for scratch cell blocks that never join the registry: their
  // counts are discarded, not retired (see IdentityPauseGuard).
  struct Unregistered {};

  IdentityCells();
  explicit IdentityCells(Unregistered) : registered_(false) {}
  ~IdentityCells();
  IdentityCells(const IdentityCells&) = delete;
  IdentityCells& operator=(const IdentityCells&) = delete;

 private:
  bool registered_ = true;
};

namespace perf_internal {
// Trivially-initialized alias for the calling thread's cells: a plain
// TLS slot the compiler reads without an init guard or wrapper call,
// keeping the cached-identity hot path at a couple of instructions.
// Null until the first identity_cells() call on this thread (and again
// during thread teardown, after the cells were retired). Exposed as a
// function-local slot rather than an extern thread_local: cross-TU
// extern TLS goes through the wrapper call, which GCC's -fsanitize=null
// flags as a possibly-null access.
inline IdentityCells*& TlsCells() {
  static thread_local IdentityCells* cells = nullptr;
  return cells;
}
IdentityCells& InitIdentityCells();  // slow path: construct + register
}  // namespace perf_internal

// The calling thread's cells: the mutation side of the API. Hot paths do
// e.g. identity_cells().vid_cache_hits.Bump().
inline IdentityCells& identity_cells() {
  IdentityCells* cells = perf_internal::TlsCells();
  if (cells == nullptr) [[unlikely]] {
    return perf_internal::InitIdentityCells();
  }
  return *cells;
}

// Exact aggregate over all threads, live and exited: the read side.
IdentityCounters identity_counters();

// Discards this thread's identity-counter increments for the guard's
// lifetime by pointing the TLS fast path at an unregistered scratch block.
// Used by WAL replay (src/core/wal_recorder.*): re-running the recorder
// hooks recomputes every digest, and counting that work again would break
// the accounting identity a recovered run must preserve. Nestable; only
// pauses the constructing thread (recovery is single-threaded).
class IdentityPauseGuard {
 public:
  IdentityPauseGuard() : prev_(perf_internal::TlsCells()) {
    perf_internal::TlsCells() = &scratch_;
  }
  ~IdentityPauseGuard() { perf_internal::TlsCells() = prev_; }
  IdentityPauseGuard(const IdentityPauseGuard&) = delete;
  IdentityPauseGuard& operator=(const IdentityPauseGuard&) = delete;

 private:
  IdentityCells* prev_;
  IdentityCells scratch_{IdentityCells::Unregistered{}};
};

}  // namespace dpc

#endif  // DPC_UTIL_PERF_H_
