// Deterministic PRNG (splitmix64-seeded xoshiro256**) and the Zipfian
// sampler used by the DNS workload (the paper cites Jung et al.: requested
// domain names follow a Zipf distribution).
#ifndef DPC_UTIL_RNG_H_
#define DPC_UTIL_RNG_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace dpc {

class Rng {
 public:
  explicit Rng(uint64_t seed = 0x9E3779B97F4A7C15ULL);

  uint64_t Next();

  // Uniform in [0, n). n must be > 0.
  uint64_t NextBelow(uint64_t n);

  // Uniform in [lo, hi] inclusive.
  int64_t NextInRange(int64_t lo, int64_t hi);

  // Uniform double in [0, 1).
  double NextDouble();

  // Shuffles `v` in place (Fisher-Yates).
  template <typename T>
  void Shuffle(std::vector<T>& v) {
    for (size_t i = v.size(); i > 1; --i) {
      size_t j = static_cast<size_t>(NextBelow(i));
      std::swap(v[i - 1], v[j]);
    }
  }

 private:
  uint64_t s_[4];
};

// Samples ranks 0..n-1 with P(k) proportional to 1/(k+1)^theta.
// Precomputes the CDF once; sampling is O(log n).
class ZipfGenerator {
 public:
  ZipfGenerator(size_t n, double theta, uint64_t seed);

  size_t Next();

  size_t n() const { return cdf_.size(); }

 private:
  Rng rng_;
  std::vector<double> cdf_;
};

}  // namespace dpc

#endif  // DPC_UTIL_RNG_H_
