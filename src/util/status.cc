#include "src/util/status.h"

namespace dpc {

namespace {
const std::string kEmptyString;
}  // namespace

const char* StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kParseError:
      return "ParseError";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kAlreadyExists:
      return "AlreadyExists";
    case StatusCode::kFailedPrecondition:
      return "FailedPrecondition";
    case StatusCode::kOutOfRange:
      return "OutOfRange";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kNotImplemented:
      return "NotImplemented";
    case StatusCode::kDeadlineExceeded:
      return "DeadlineExceeded";
  }
  return "Unknown";
}

Status::Status(StatusCode code, std::string msg) {
  if (code != StatusCode::kOk) {
    state_ = std::make_shared<const State>(State{code, std::move(msg)});
  }
}

const std::string& Status::message() const {
  return ok() ? kEmptyString : state_->message;
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = StatusCodeName(code());
  out += ": ";
  out += message();
  return out;
}

}  // namespace dpc
