#include "src/util/perf.h"

namespace dpc {

IdentityCounters& identity_counters() {
  static IdentityCounters counters;
  return counters;
}

}  // namespace dpc
