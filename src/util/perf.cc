#include "src/util/perf.h"

#include <vector>

#include "src/util/thread_annotations.h"

namespace dpc {

namespace {

// Registry of every live thread's cell block plus the totals folded in by
// exited threads. Heap-allocated Meyers singleton (never destroyed) so
// thread-local destructors running at process exit can still deregister.
struct CellRegistry {
  Mutex mu;
  std::vector<const IdentityCells*> live DPC_GUARDED_BY(mu);
  IdentityCounters retired DPC_GUARDED_BY(mu);
};

CellRegistry& Registry() {
  static CellRegistry* registry = new CellRegistry();
  return *registry;
}

void AccumulateInto(IdentityCounters& total, const IdentityCells& cells) {
  total.sha1_invocations += cells.sha1_invocations.load();
  total.tuple_bytes_serialized += cells.tuple_bytes_serialized.load();
  total.vid_cache_hits += cells.vid_cache_hits.load();
  total.vid_cache_misses += cells.vid_cache_misses.load();
  total.tuples_interned += cells.tuples_interned.load();
}

}  // namespace

IdentityCells::IdentityCells() {
  CellRegistry& reg = Registry();
  MutexLock lock(reg.mu);
  reg.live.push_back(this);
}

IdentityCells::~IdentityCells() {
  // Drop the fast-path alias so it never dangles past this destructor
  // (only if it still points here: a scratch block dying must not clear
  // the alias a pause guard already restored).
  if (perf_internal::TlsCells() == this) perf_internal::TlsCells() = nullptr;
  if (!registered_) return;  // scratch block: counts are discarded
  CellRegistry& reg = Registry();
  MutexLock lock(reg.mu);
  AccumulateInto(reg.retired, *this);
  for (auto it = reg.live.begin(); it != reg.live.end(); ++it) {
    if (*it == this) {
      reg.live.erase(it);
      break;
    }
  }
}

namespace perf_internal {

IdentityCells& InitIdentityCells() {
  thread_local IdentityCells cells;
  TlsCells() = &cells;
  return cells;
}

}  // namespace perf_internal

IdentityCounters identity_counters() {
  CellRegistry& reg = Registry();
  MutexLock lock(reg.mu);
  IdentityCounters total = reg.retired;
  for (const IdentityCells* cells : reg.live) {
    AccumulateInto(total, *cells);
  }
  return total;
}

}  // namespace dpc
