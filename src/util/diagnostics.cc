#include "src/util/diagnostics.h"

#include <algorithm>

namespace dpc {

std::string SourceLoc::ToString() const {
  if (!valid()) return "<unknown>";
  return "line " + std::to_string(line) + ", column " + std::to_string(column);
}

const char* SeverityName(Severity severity) {
  switch (severity) {
    case Severity::kNote: return "note";
    case Severity::kWarning: return "warning";
    case Severity::kError: return "error";
  }
  return "?";
}

std::string Diagnostic::ToString(const std::string& file) const {
  std::string out;
  if (!file.empty()) {
    out += file;
    out += ":";
  }
  if (loc.valid()) {
    out += std::to_string(loc.line) + ":" + std::to_string(loc.column) + ":";
  }
  if (!out.empty()) out += " ";
  out += SeverityName(severity);
  out += ": ";
  out += message;
  if (!code.empty()) {
    out += " [";
    out += code;
    out += "]";
  }
  for (const Diagnostic& note : notes) {
    out += "\n    ";
    out += note.ToString(file);
  }
  return out;
}

Diagnostic& AddDiag(std::vector<Diagnostic>& out, Severity severity,
                    std::string code, SourceLoc loc, std::string message) {
  Diagnostic d;
  d.severity = severity;
  d.code = std::move(code);
  d.loc = loc;
  d.message = std::move(message);
  out.push_back(std::move(d));
  return out.back();
}

size_t CountErrors(const std::vector<Diagnostic>& diags) {
  size_t n = 0;
  for (const Diagnostic& d : diags) {
    if (d.severity == Severity::kError) ++n;
  }
  return n;
}

size_t CountWarnings(const std::vector<Diagnostic>& diags) {
  size_t n = 0;
  for (const Diagnostic& d : diags) {
    if (d.severity == Severity::kWarning) ++n;
  }
  return n;
}

void SortByLocation(std::vector<Diagnostic>& diags) {
  // Code is the tie-break at equal positions so rendered output (and the
  // lint golden files built on it) is identical across standard-library
  // hash orderings; full ties keep insertion order (stable sort).
  std::stable_sort(diags.begin(), diags.end(),
                   [](const Diagnostic& a, const Diagnostic& b) {
                     if (a.loc.valid() != b.loc.valid()) return a.loc.valid();
                     if (a.loc != b.loc) return a.loc < b.loc;
                     return a.code < b.code;
                   });
}

}  // namespace dpc
