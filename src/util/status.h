// Status: lightweight error propagation without exceptions, in the style of
// Apache Arrow / RocksDB. Library code returns Status (or Result<T>) instead
// of throwing; callers check ok() or use the DPC_RETURN_NOT_OK macro.
#ifndef DPC_UTIL_STATUS_H_
#define DPC_UTIL_STATUS_H_

#include <memory>
#include <string>
#include <utility>

namespace dpc {

enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kParseError,
  kNotFound,
  kAlreadyExists,
  kFailedPrecondition,
  kOutOfRange,
  kInternal,
  kNotImplemented,
  kDeadlineExceeded,
};

// Human-readable name of a status code, e.g. "InvalidArgument".
const char* StatusCodeName(StatusCode code);

class Status {
 public:
  // Default constructor builds an OK status with no allocation.
  Status() : state_(nullptr) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status ParseError(std::string msg) {
    return Status(StatusCode::kParseError, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status NotImplemented(std::string msg) {
    return Status(StatusCode::kNotImplemented, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }

  Status(StatusCode code, std::string msg);

  bool ok() const { return state_ == nullptr; }
  StatusCode code() const { return ok() ? StatusCode::kOk : state_->code; }
  const std::string& message() const;

  bool IsInvalidArgument() const {
    return code() == StatusCode::kInvalidArgument;
  }
  bool IsParseError() const { return code() == StatusCode::kParseError; }
  bool IsNotFound() const { return code() == StatusCode::kNotFound; }
  bool IsAlreadyExists() const { return code() == StatusCode::kAlreadyExists; }
  bool IsFailedPrecondition() const {
    return code() == StatusCode::kFailedPrecondition;
  }
  bool IsOutOfRange() const { return code() == StatusCode::kOutOfRange; }
  bool IsInternal() const { return code() == StatusCode::kInternal; }
  bool IsDeadlineExceeded() const {
    return code() == StatusCode::kDeadlineExceeded;
  }

  // "OK" or "<CodeName>: <message>".
  std::string ToString() const;

 private:
  struct State {
    StatusCode code;
    std::string message;
  };
  // nullptr means OK; keeps the success path allocation-free.
  std::shared_ptr<const State> state_;
};

}  // namespace dpc

// Propagates a non-OK Status to the caller.
#define DPC_RETURN_NOT_OK(expr)            \
  do {                                     \
    ::dpc::Status _st = (expr);            \
    if (!_st.ok()) return _st;             \
  } while (0)

#endif  // DPC_UTIL_STATUS_H_
