#include "src/util/logging.h"

namespace dpc {

namespace {
LogLevel g_level = LogLevel::kWarning;

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarning:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?";
}
}  // namespace

LogLevel GetLogLevel() { return g_level; }
void SetLogLevel(LogLevel level) { g_level = level; }

namespace internal {

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : level_(level) {
  stream_ << "[" << LevelName(level) << " " << file << ":" << line << "] ";
}

LogMessage::~LogMessage() {
  stream_ << "\n";
  std::cerr << stream_.str();
}

FatalMessage::FatalMessage(const char* file, int line, const char* expr) {
  stream_ << "[FATAL " << file << ":" << line << "] Check failed: " << expr
          << " ";
}

FatalMessage::~FatalMessage() {
  stream_ << "\n";
  std::cerr << stream_.str();
  std::abort();
}

}  // namespace internal
}  // namespace dpc
