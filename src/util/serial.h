// Compact binary serialization used both as the wire format for simulated
// messages and as the storage format whose size the experiments measure
// (the paper used boost::serialization for the same purpose).
//
// Encoding: fixed-width little-endian integers for u8/u32/u64, LEB128-style
// varints for lengths and general integers, length-prefixed byte strings.
#ifndef DPC_UTIL_SERIAL_H_
#define DPC_UTIL_SERIAL_H_

#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>
#include <vector>

#include "src/util/result.h"
#include "src/util/sha1.h"
#include "src/util/status.h"

namespace dpc {

// Arithmetic sizes of the encodings below, so SerializedSize() can be
// computed without materializing a buffer. These MUST stay in lockstep with
// the writers: the storage/bandwidth figures charge exactly these bytes.
constexpr size_t VarintSize(uint64_t v) {
  size_t n = 1;
  while (v >= 0x80) {
    v >>= 7;
    ++n;
  }
  return n;
}

constexpr size_t VarintSignedSize(int64_t v) {
  return VarintSize((static_cast<uint64_t>(v) << 1) ^
                    static_cast<uint64_t>(v >> 63));
}

inline size_t StringSerializedSize(std::string_view sv) {
  return VarintSize(sv.size()) + sv.size();
}

class ByteWriter {
 public:
  void PutU8(uint8_t v) { buf_.push_back(v); }

  // Pre-reserves capacity for `additional` more bytes, cutting reallocation
  // churn when the final size is known (e.g. from a SerializedSize()).
  void Reserve(size_t additional) { buf_.reserve(buf_.size() + additional); }

  void PutU32(uint32_t v) {
    for (int i = 0; i < 4; ++i) buf_.push_back(static_cast<uint8_t>(v >> (8 * i)));
  }

  void PutU64(uint64_t v) {
    for (int i = 0; i < 8; ++i) buf_.push_back(static_cast<uint8_t>(v >> (8 * i)));
  }

  // Unsigned LEB128 varint.
  void PutVarint(uint64_t v) {
    while (v >= 0x80) {
      buf_.push_back(static_cast<uint8_t>(v) | 0x80);
      v >>= 7;
    }
    buf_.push_back(static_cast<uint8_t>(v));
  }

  // Zigzag-encoded signed varint.
  void PutVarintSigned(int64_t v) {
    PutVarint((static_cast<uint64_t>(v) << 1) ^
              static_cast<uint64_t>(v >> 63));
  }

  // Length-prefixed byte string.
  void PutString(std::string_view sv) {
    PutVarint(sv.size());
    buf_.insert(buf_.end(), sv.begin(), sv.end());
  }

  void PutDigest(const Sha1Digest& d) {
    buf_.insert(buf_.end(), d.bytes.begin(), d.bytes.end());
  }

  void PutBool(bool b) { PutU8(b ? 1 : 0); }

  const std::vector<uint8_t>& bytes() const { return buf_; }
  size_t size() const { return buf_.size(); }
  std::vector<uint8_t> Take() { return std::move(buf_); }
  // Empties the buffer but keeps its capacity — for reuse across frames.
  void Clear() { buf_.clear(); }

 private:
  std::vector<uint8_t> buf_;
};

class ByteReader {
 public:
  explicit ByteReader(const std::vector<uint8_t>& buf)
      : data_(buf.data()), size_(buf.size()) {}
  ByteReader(const uint8_t* data, size_t size) : data_(data), size_(size) {}

  Result<uint8_t> GetU8() {
    if (pos_ + 1 > size_) return Truncated("u8");
    return data_[pos_++];
  }

  Result<uint32_t> GetU32() {
    if (pos_ + 4 > size_) return Truncated("u32");
    uint32_t v = 0;
    for (int i = 0; i < 4; ++i) v |= static_cast<uint32_t>(data_[pos_++]) << (8 * i);
    return v;
  }

  Result<uint64_t> GetU64() {
    if (pos_ + 8 > size_) return Truncated("u64");
    uint64_t v = 0;
    for (int i = 0; i < 8; ++i) v |= static_cast<uint64_t>(data_[pos_++]) << (8 * i);
    return v;
  }

  Result<uint64_t> GetVarint() {
    uint64_t v = 0;
    int shift = 0;
    while (true) {
      if (pos_ >= size_) return Truncated("varint");
      if (shift > 63) return Status::ParseError("varint too long");
      uint8_t b = data_[pos_++];
      v |= static_cast<uint64_t>(b & 0x7f) << shift;
      if ((b & 0x80) == 0) break;
      shift += 7;
    }
    return v;
  }

  Result<int64_t> GetVarintSigned() {
    DPC_ASSIGN_OR_RETURN(uint64_t z, GetVarint());
    return static_cast<int64_t>((z >> 1) ^ (~(z & 1) + 1));
  }

  Result<std::string> GetString() {
    DPC_ASSIGN_OR_RETURN(uint64_t len, GetVarint());
    // Compare against the remaining bytes rather than `pos_ + len`: a
    // hostile length near 2^64 would wrap the addition past the check and
    // reach the allocator.
    if (len > size_ - pos_) return Truncated("string body");
    std::string s(reinterpret_cast<const char*>(data_ + pos_), len);
    pos_ += len;
    return s;
  }

  Result<Sha1Digest> GetDigest() {
    if (pos_ + 20 > size_) return Truncated("digest");
    Sha1Digest d;
    std::memcpy(d.bytes.data(), data_ + pos_, 20);
    pos_ += 20;
    return d;
  }

  Result<bool> GetBool() {
    DPC_ASSIGN_OR_RETURN(uint8_t b, GetU8());
    return b != 0;
  }

  size_t remaining() const { return size_ - pos_; }
  bool AtEnd() const { return pos_ == size_; }

 private:
  Status Truncated(const char* what) {
    return Status::ParseError(std::string("truncated input reading ") + what);
  }

  const uint8_t* data_;
  size_t size_;
  size_t pos_ = 0;
};

}  // namespace dpc

#endif  // DPC_UTIL_SERIAL_H_
