#include "src/core/reference_recorder.h"

#include "src/util/logging.h"

namespace dpc {

ReferenceRecorder::ReferenceRecorder(int num_nodes) {
  nodes_.resize(num_nodes);
}

ProvMeta ReferenceRecorder::OnInject(NodeId, const TupleRef& event) {
  ProvMeta meta;
  meta.evid = event->Vid();
  meta.tree = std::make_shared<ProvTree>();
  meta.tree->set_event(*event);
  return meta;
}

ProvMeta ReferenceRecorder::OnRuleFired(NodeId, const Rule& rule,
                                        const TupleRef& /*event*/,
                                        const ProvMeta& meta,
                                        const std::vector<TupleRef>& slow,
                                        const TupleRef& head) {
  ProvMeta out = meta;
  DPC_CHECK(meta.tree != nullptr);
  out.tree = std::make_shared<ProvTree>(*meta.tree);
  // ProvStep carries tuples by value (trees are serialized wholesale), so
  // the shared refs are flattened here, at the tree boundary.
  std::vector<Tuple> slow_tuples;
  slow_tuples.reserve(slow.size());
  for (const TupleRef& t : slow) slow_tuples.push_back(*t);
  out.tree->AppendStep(ProvStep{rule.id, *head, std::move(slow_tuples)});
  return out;
}

void ReferenceRecorder::OnOutput(NodeId node, const TupleRef& output,
                                 const ProvMeta& meta) {
  DPC_CHECK(meta.tree != nullptr);
  DPC_CHECK(!meta.tree->empty());
  DPC_DCHECK(meta.tree->Output() == *output)
      << "tree root " << meta.tree->Output().ToString() << " vs output "
      << output->ToString();
  NodeState& state = nodes_[node];
  state.bytes += meta.tree->SerializedSize();
  state.trees.push_back(*meta.tree);
}

void ReferenceRecorder::SerializeMeta(const ProvMeta& meta,
                                      ByteWriter& w) const {
  w.PutDigest(meta.evid);
  meta.tree->Serialize(w);
}

Result<ProvMeta> ReferenceRecorder::DeserializeMeta(ByteReader& r) const {
  ProvMeta meta;
  DPC_ASSIGN_OR_RETURN(meta.evid, r.GetDigest());
  DPC_ASSIGN_OR_RETURN(ProvTree tree, ProvTree::Deserialize(r));
  meta.tree = std::make_shared<ProvTree>(std::move(tree));
  return meta;
}

StorageBreakdown ReferenceRecorder::StorageAt(NodeId node) const {
  StorageBreakdown s;
  s.prov = nodes_[node].bytes;  // whole trees stored with the output tuple
  return s;
}

std::vector<const ProvTree*> ReferenceRecorder::FindTrees(
    const Tuple& output, const Vid* evid) const {
  std::vector<const ProvTree*> out;
  NodeId node = output.Location();
  if (node < 0 || node >= static_cast<NodeId>(nodes_.size())) return out;
  for (const ProvTree& tree : nodes_[node].trees) {
    if (tree.Output() != output) continue;
    if (evid != nullptr && tree.event().Vid() != *evid) continue;
    out.push_back(&tree);
  }
  return out;
}

std::vector<const ProvTree*> ReferenceRecorder::AllTrees() const {
  std::vector<const ProvTree*> out;
  for (const NodeState& state : nodes_) {
    for (const ProvTree& tree : state.trees) out.push_back(&tree);
  }
  return out;
}

}  // namespace dpc
