#include "src/core/reference_recorder.h"

#include "src/obs/metrics.h"
#include "src/util/logging.h"

namespace dpc {

ReferenceRecorder::ReferenceRecorder(int num_nodes) {
  nodes_.resize(num_nodes);
}

ProvMeta ReferenceRecorder::OnInject(NodeId, const TupleRef& event) {
  ProvMeta meta;
  meta.evid = event->Vid();
  meta.tree = std::make_shared<ProvTree>();
  meta.tree->set_event(*event);
  return meta;
}

ProvMeta ReferenceRecorder::OnRuleFired(NodeId, const Rule& rule,
                                        const TupleRef& /*event*/,
                                        const ProvMeta& meta,
                                        const std::vector<TupleRef>& slow,
                                        const TupleRef& head) {
  ProvMeta out = meta;
  // Metadata decoded from the wire always carries a tree; a missing one
  // means a peer (or test) fed us meta from a different scheme. Start a
  // fresh tree rather than aborting mid-pipeline.
  out.tree = meta.tree != nullptr ? std::make_shared<ProvTree>(*meta.tree)
                                  : std::make_shared<ProvTree>();
  // ProvStep carries tuples by value (trees are serialized wholesale), so
  // the shared refs are flattened here, at the tree boundary.
  std::vector<Tuple> slow_tuples;
  slow_tuples.reserve(slow.size());
  for (const TupleRef& t : slow) slow_tuples.push_back(*t);
  out.tree->AppendStep(ProvStep{rule.id, *head, std::move(slow_tuples)});
  return out;
}

void ReferenceRecorder::OnOutput(NodeId node, const TupleRef& output,
                                 const ProvMeta& meta) {
  // The meta may have been decoded from untrusted peer bytes: a missing,
  // empty or mismatched tree is the sender's fault, so drop the record
  // (counted) instead of DPC_CHECK-aborting the receiving node.
  if (meta.tree == nullptr || meta.tree->empty() ||
      meta.tree->Output() != *output) {
    GlobalMetrics()
        .GetCounter("recorder.reference.rejected_trees")
        .IncrementAt(node);
    DPC_LOG(Warning) << "output " << output->ToString()
                     << " arrived without a matching provenance tree";
    return;
  }
  NodeState& state = nodes_[node];
  state.bytes += meta.tree->SerializedSize();
  state.trees.push_back(*meta.tree);
}

void ReferenceRecorder::SerializeMeta(const ProvMeta& meta,
                                      ByteWriter& w) const {
  w.PutDigest(meta.evid);
  if (meta.tree == nullptr) {
    ProvTree().Serialize(w);  // scheme-mismatched meta: ship an empty tree
    return;
  }
  meta.tree->Serialize(w);
}

Result<ProvMeta> ReferenceRecorder::DeserializeMeta(ByteReader& r) const {
  ProvMeta meta;
  DPC_ASSIGN_OR_RETURN(meta.evid, r.GetDigest());
  DPC_ASSIGN_OR_RETURN(ProvTree tree, ProvTree::Deserialize(r));
  meta.tree = std::make_shared<ProvTree>(std::move(tree));
  return meta;
}

StorageBreakdown ReferenceRecorder::StorageAt(NodeId node) const {
  StorageBreakdown s;
  s.prov = nodes_[node].bytes;  // whole trees stored with the output tuple
  return s;
}

std::vector<const ProvTree*> ReferenceRecorder::FindTrees(
    const Tuple& output, const Vid* evid) const {
  std::vector<const ProvTree*> out;
  NodeId node = output.Location();
  if (node < 0 || node >= static_cast<NodeId>(nodes_.size())) return out;
  for (const ProvTree& tree : nodes_[node].trees) {
    if (tree.Output() != output) continue;
    if (evid != nullptr && tree.event().Vid() != *evid) continue;
    out.push_back(&tree);
  }
  return out;
}

std::vector<const ProvTree*> ReferenceRecorder::AllTrees() const {
  std::vector<const ProvTree*> out;
  for (const NodeState& state : nodes_) {
    for (const ProvTree& tree : state.trees) out.push_back(&tree);
  }
  return out;
}

}  // namespace dpc
