#include "src/core/distributed_query.h"

#include <algorithm>
#include <optional>

#include "src/obs/metrics.h"
#include "src/obs/trace.h"
#include "src/util/logging.h"

namespace dpc {

namespace {

// One element of a compact chain, root side first (Basic/Advanced).
struct QStep {
  std::string rule_id;
  NodeId loc = kNullNode;
  std::vector<Tuple> slow;
  Vid event_vid{};
  bool has_event_vid = false;
};

constexpr size_t kMaxDepth = 100000;

}  // namespace

struct DistributedQuerier::Impl {
  enum class Kind { kExspan, kBasic, kAdvanced };
  Kind kind = Kind::kBasic;
  const ExspanRecorder* exspan = nullptr;
  const BasicRecorder* basic = nullptr;
  const AdvancedRecorder* advanced = nullptr;
  const Program* program = nullptr;
  const FunctionRegistry* fns = nullptr;

  // One in-flight query.
  struct Ctx {
    Tuple output;
    std::optional<Vid> evid;
    NodeId origin = kNullNode;
    SimTime start = 0;
    uint64_t qid = 0;  // trace span key / query sequence number
    int pending = 0;   // active branch tokens
    bool failed = false;
    // The callback fired (result, failure, or deadline); late branch
    // completions must not fire it again.
    bool completed = false;
    Status failure;
    std::vector<ProvTree> trees;
    size_t entries = 0;
    size_t bytes = 0;
    int hops = 0;
    Callback cb;
  };
  using CtxPtr = std::shared_ptr<Ctx>;

  // The protocol driver (defined later in this file); it must outlive
  // every scheduled continuation, so it lives here with the querier.
  std::shared_ptr<void> protocol;
};

DistributedQuerier::DistributedQuerier(const Topology* topology,
                                       EventQueue* queue,
                                       QueryCostModel cost)
    : topology_(topology),
      queue_(queue),
      cost_(cost),
      net_(topology, queue),
      impl_(std::make_unique<Impl>()) {
  DPC_CHECK(topology_ != nullptr);
  DPC_CHECK(queue_ != nullptr);
  net_.SetDeliveryHandler([this](const Message& msg) {
    Status st = HandleMessage(msg);
    if (!st.ok()) {
      DPC_LOG(Warning) << "query frame rejected: " << st.ToString();
    }
  });
}

DistributedQuerier::~DistributedQuerier() = default;

void DistributedQuerier::EnableReliableTransport(TransportOptions options) {
  DPC_CHECK(!impl_->protocol)
      << "EnableReliableTransport must precede the first query";
  transport_ = std::make_unique<ReliableTransport>(&net_, queue_, options);
  transport_->SetDeliveryHandler([this](const Message& msg) {
    Status st = HandleMessage(msg);
    if (!st.ok()) {
      DPC_LOG(Warning) << "query frame rejected: " << st.ToString();
    }
  });
  transport_->SetFailureHandler(
      [this](const Message& msg) { HandleDeliveryFailure(msg); });
}

std::unique_ptr<DistributedQuerier> DistributedQuerier::ForExspan(
    const ExspanRecorder* recorder, const Topology* topology,
    EventQueue* queue, QueryCostModel cost) {
  DPC_CHECK(recorder != nullptr);
  std::unique_ptr<DistributedQuerier> q(
      new DistributedQuerier(topology, queue, cost));
  q->impl_->kind = Impl::Kind::kExspan;
  q->impl_->exspan = recorder;
  return q;
}

std::unique_ptr<DistributedQuerier> DistributedQuerier::ForBasic(
    const BasicRecorder* recorder, const Program* program,
    const FunctionRegistry* fns, const Topology* topology, EventQueue* queue,
    QueryCostModel cost) {
  DPC_CHECK(recorder != nullptr);
  DPC_CHECK(program != nullptr);
  DPC_CHECK(fns != nullptr);
  std::unique_ptr<DistributedQuerier> q(
      new DistributedQuerier(topology, queue, cost));
  q->impl_->kind = Impl::Kind::kBasic;
  q->impl_->basic = recorder;
  q->impl_->program = program;
  q->impl_->fns = fns;
  return q;
}

std::unique_ptr<DistributedQuerier> DistributedQuerier::ForAdvanced(
    const AdvancedRecorder* recorder, const Program* program,
    const FunctionRegistry* fns, const Topology* topology, EventQueue* queue,
    QueryCostModel cost) {
  DPC_CHECK(recorder != nullptr);
  std::unique_ptr<DistributedQuerier> q(
      new DistributedQuerier(topology, queue, cost));
  q->impl_->kind = Impl::Kind::kAdvanced;
  q->impl_->advanced = recorder;
  q->impl_->program = program;
  q->impl_->fns = fns;
  return q;
}

Status DistributedQuerier::HandleMessage(const Message& msg) {
  // `msg.payload` is peer bytes: anything undecodable fails the frame
  // with a Status — never a DPC_CHECK — because a malformed or replayed
  // message must not take the node down.
  ByteReader r(msg.payload);
  auto id = r.GetU64();
  if (!id.ok()) {
    GlobalMetrics().GetCounter("query.malformed_messages").IncrementAt(msg.dst);
    return Status::InvalidArgument("malformed query frame from node " +
                                   std::to_string(msg.src) + ": " +
                                   id.status().ToString());
  }
  auto it = continuations_.find(*id);
  if (it == continuations_.end()) {
    GlobalMetrics()
        .GetCounter("query.unknown_continuations")
        .IncrementAt(msg.dst);
    return Status::NotFound("unknown query continuation " +
                            std::to_string(*id) + " from node " +
                            std::to_string(msg.src));
  }
  auto fn = std::move(it->second.fn);
  continuations_.erase(it);
  fn();
  return Status::OK();
}

void DistributedQuerier::HandleDeliveryFailure(const Message& msg) {
  ByteReader r(msg.payload);
  auto id = r.GetU64();
  if (!id.ok()) return;
  auto it = continuations_.find(*id);
  if (it == continuations_.end()) return;
  auto on_fail = std::move(it->second.on_fail);
  continuations_.erase(it);
  if (on_fail) on_fail();
}

namespace {

// Everything below runs inside the event queue; the helper lambdas close
// over the querier through `self`.
struct Protocol {
  DistributedQuerier* owner;
  const Topology* topo;
  EventQueue* queue;
  MessageChannel* chan;
  const QueryCostModel* cost;
  DistributedQuerier::Impl* impl;
  std::unordered_map<uint64_t, DistributedQuerier::Continuation>*
      continuations;
  uint64_t* next_id;

  using Ctx = DistributedQuerier::Impl::Ctx;
  using CtxPtr = DistributedQuerier::Impl::CtxPtr;

  // --- plumbing -----------------------------------------------------------

  // Fires the callback exactly once per query; late completions (after a
  // deadline already fired it) are dropped.
  void Finish(const CtxPtr& ctx, Result<QueryResult> res) {
    if (ctx->completed) return;
    ctx->completed = true;
    MetricsRegistry& reg = GlobalMetrics();
    if (res.ok()) {
      reg.GetCounter("query.completed").IncrementAt(ctx->origin);
      reg.GetHistogram("query.latency_s").Observe(res->latency_s);
      reg.GetHistogram("query.hops").Observe(res->hops);
    } else {
      reg.GetCounter("query.failed").IncrementAt(ctx->origin);
    }
    if (Trace().enabled()) {
      Trace().AsyncEnd(ctx->origin, TraceCat::kQuery, "query", ctx->qid,
                       res.ok() ? "\"outcome\": \"ok\", \"trees\": " +
                                      std::to_string(res->trees.size())
                                : std::string("\"outcome\": \"failed\""));
    }
    ctx->cb(std::move(res));
  }

  void Send(const CtxPtr& ctx, NodeId from, NodeId to, size_t carried,
            std::function<void()> fn) {
    uint64_t id = (*next_id)++;
    DistributedQuerier::Continuation cont;
    cont.fn = std::move(fn);
    // The reliable transport reports an abandoned frame (partitioned or
    // persistently lossy path): its branch fails the query cleanly.
    cont.on_fail = [this, ctx]() {
      Fail(ctx, Status::DeadlineExceeded(
                    "query frame delivery abandoned by transport"));
    };
    (*continuations)[id] = std::move(cont);
    Message msg;
    msg.kind = MessageKind::kQuery;
    msg.src = from;
    msg.dst = to;
    ByteWriter w;
    w.PutU64(id);
    msg.payload = w.Take();
    // Pad the payload to the carried response size so the per-link
    // transfer time is realistic.
    msg.payload.resize(std::max<size_t>(msg.payload.size(),
                                        carried + cost->request_bytes));
    if (from != to) ctx->hops += topo->Distance(from, to);
    if (Trace().enabled()) {
      Trace().Instant(from, TraceCat::kQuery, "hop",
                      "\"qid\": " + std::to_string(ctx->qid) +
                          ", \"to\": " + std::to_string(to) +
                          ", \"bytes\": " + std::to_string(msg.payload.size()));
    }
    chan->Send(std::move(msg));
  }

  void After(double delay, std::function<void()> fn) {
    queue->ScheduleAfter(delay, std::move(fn));
  }

  void Fetch(const CtxPtr& ctx, size_t entries, size_t bytes) {
    ctx->entries += entries;
    ctx->bytes += bytes;
  }

  double ProcessingDelay(size_t entries, size_t bytes) const {
    return static_cast<double>(entries) * cost->per_entry_s +
           static_cast<double>(bytes) * cost->per_processed_byte_s;
  }

  void Fail(const CtxPtr& ctx, Status status) {
    if (!ctx->failed) {
      ctx->failed = true;
      ctx->failure = std::move(status);
    }
    Release(ctx);
  }

  // Consumes one branch token; completes the query when none remain.
  void Release(const CtxPtr& ctx) {
    if (ctx->pending <= 0) {
      // A duplicate or late branch completion — e.g. a retransmitted
      // frame whose first copy already finished this query. A peer (or
      // the network) can provoke this at will, so it must be a counted
      // no-op rather than a DPC_CHECK abort.
      GlobalMetrics()
          .GetCounter("query.duplicate_responses")
          .IncrementAt(ctx->origin);
      return;
    }
    if (--ctx->pending > 0) return;
    if (ctx->failed) {
      Finish(ctx, ctx->failure);
      return;
    }
    // Deduplicate identical derivations found through different branches.
    std::sort(ctx->trees.begin(), ctx->trees.end(),
              [](const ProvTree& a, const ProvTree& b) {
                ByteWriter wa, wb;
                a.Serialize(wa);
                b.Serialize(wb);
                return wa.bytes() < wb.bytes();
              });
    ctx->trees.erase(std::unique(ctx->trees.begin(), ctx->trees.end()),
                     ctx->trees.end());
    if (ctx->trees.empty()) {
      Finish(ctx, Status::NotFound("no derivation found for " +
                                   ctx->output.ToString()));
      return;
    }
    QueryResult res;
    res.trees = std::move(ctx->trees);
    res.latency_s = queue->now() - ctx->start;
    res.entries_touched = ctx->entries;
    res.bytes_transferred = ctx->bytes;
    res.hops = ctx->hops;
    Finish(ctx, std::move(res));
  }

  // --- chain schemes (Basic / Advanced) ------------------------------------

  // Scheme-specific row expansion at (loc, rid).
  Status RowsFor(const CtxPtr& ctx, const NodeRid& at,
                 std::vector<std::pair<QStep, NodeRid>>& out) {
    if (impl->kind == DistributedQuerier::Impl::Kind::kBasic) {
      for (const RuleExecEntry* exec :
           impl->basic->RuleExecAt(at.loc).FindByRid(at.rid)) {
        Fetch(ctx, 1, exec->SerializedSize(true));
        QStep step;
        step.rule_id = exec->rule_id;
        step.loc = exec->rloc;
        size_t slow_begin = 0;
        if (exec->next.IsNull()) {
          if (exec->vids.empty()) {
            return Status::Internal("leaf ruleExec row without event vid");
          }
          step.event_vid = exec->vids[0];
          step.has_event_vid = true;
          slow_begin = 1;
        }
        for (size_t i = slow_begin; i < exec->vids.size(); ++i) {
          const Tuple* st =
              impl->basic->TuplesAt(exec->rloc).Find(exec->vids[i]);
          if (st == nullptr) {
            return Status::NotFound("unresolvable slow-tuple vid");
          }
          Fetch(ctx, 1, st->SerializedSize());
          step.slow.push_back(*st);
        }
        out.emplace_back(std::move(step), exec->next);
      }
      return Status::OK();
    }
    // Advanced (with or without the §5.4 split).
    auto add_step = [&](const std::string& rule_id, NodeId rloc,
                        const std::vector<Vid>& vids,
                        const NodeRid& next) -> Status {
      QStep step;
      step.rule_id = rule_id;
      step.loc = rloc;
      for (const Vid& v : vids) {
        const Tuple* st = impl->advanced->TuplesAt(rloc).Find(v);
        if (st == nullptr) {
          return Status::NotFound("unresolvable slow-tuple vid");
        }
        Fetch(ctx, 1, st->SerializedSize());
        step.slow.push_back(*st);
      }
      out.emplace_back(std::move(step), next);
      return Status::OK();
    };
    if (impl->advanced->inter_class_sharing()) {
      const RuleExecNodeEntry* node =
          impl->advanced->RuleExecNodesAt(at.loc).FindByRid(at.rid);
      if (node == nullptr) return Status::OK();
      for (const RuleExecLinkEntry* link :
           impl->advanced->RuleExecLinksAt(at.loc).FindByRid(at.rid)) {
        Fetch(ctx, 2, node->SerializedSize() + link->SerializedSize());
        DPC_RETURN_NOT_OK(
            add_step(node->rule_id, node->rloc, node->vids, link->next));
      }
      return Status::OK();
    }
    for (const RuleExecEntry* exec :
         impl->advanced->RuleExecAt(at.loc).FindByRid(at.rid)) {
      Fetch(ctx, 1, exec->SerializedSize(true));
      DPC_RETURN_NOT_OK(
          add_step(exec->rule_id, exec->rloc, exec->vids, exec->next));
    }
    return Status::OK();
  }

  // Executes one chain step at `at.loc`; owns one branch token.
  void ChainStep(CtxPtr ctx, NodeRid at, std::vector<QStep> chain,
                 Vid target_evid, size_t carried) {
    if (chain.size() > kMaxDepth) {
      Fail(ctx, Status::Internal("query exceeded depth limit"));
      return;
    }
    std::vector<std::pair<QStep, NodeRid>> rows;
    Status st = RowsFor(ctx, at, rows);
    if (!st.ok()) {
      Fail(ctx, std::move(st));
      return;
    }
    if (rows.empty()) {
      // Dangling reference: this branch dies (Theorem 5 guarantees the
      // true chain survives elsewhere).
      Release(ctx);
      return;
    }
    if (Trace().enabled()) {
      Trace().Instant(at.loc, TraceCat::kQuery, "chain_step",
                      "\"qid\": " + std::to_string(ctx->qid) +
                          ", \"rows\": " + std::to_string(rows.size()) +
                          ", \"depth\": " + std::to_string(chain.size()));
    }
    ctx->pending += static_cast<int>(rows.size()) - 1;
    // Charge what the rows actually occupy on the wire: a fixed ruleExec
    // frame plus the serialized slow tuples (not their count).
    size_t row_bytes = 0;
    for (const auto& [step, _] : rows) {
      row_bytes += 64;
      for (const Tuple& st_tuple : step.slow) {
        row_bytes += st_tuple.SerializedSize();
      }
    }
    double delay = ProcessingDelay(rows.size(), row_bytes);

    After(delay, [this, ctx, at, rows = std::move(rows),
                  chain = std::move(chain), target_evid, carried]() mutable {
      for (auto& [step, next] : rows) {
        std::vector<QStep> branch_chain = chain;
        size_t branch_carried = carried + 96 * (branch_chain.size() + 1);
        branch_chain.push_back(step);
        if (next.IsNull()) {
          FinishChain(ctx, at.loc, std::move(branch_chain), target_evid,
                      branch_carried);
        } else {
          NodeRid next_ref = next;
          Send(ctx, at.loc, next_ref.loc, branch_carried,
               [this, ctx, next_ref, bc = std::move(branch_chain),
                target_evid, branch_carried]() mutable {
                 ChainStep(ctx, next_ref, std::move(bc), target_evid,
                           branch_carried);
               });
        }
      }
    });
  }

  // Leaf reached at `leaf_loc`: retrieve the event, ship the response to
  // the origin, reconstruct there. Owns one branch token.
  void FinishChain(CtxPtr ctx, NodeId leaf_loc, std::vector<QStep> chain,
                   Vid target_evid, size_t carried) {
    const QStep& leaf = chain.back();
    Vid evid = target_evid;
    if (impl->kind == DistributedQuerier::Impl::Kind::kBasic) {
      if (!leaf.has_event_vid) {
        Fail(ctx, Status::Internal("Basic chain leaf lacks an event vid"));
        return;
      }
      evid = leaf.event_vid;
      if (ctx->evid.has_value() && evid != *ctx->evid) {
        Release(ctx);  // filtered out
        return;
      }
    }
    const TupleStore& events =
        impl->kind == DistributedQuerier::Impl::Kind::kBasic
            ? impl->basic->EventsAt(leaf.loc)
            : impl->advanced->EventsAt(leaf.loc);
    const Tuple* event = events.Find(evid);
    if (event == nullptr) {
      Release(ctx);  // another class's branch (§5.6 EVID filter)
      return;
    }
    Fetch(ctx, 1, event->SerializedSize());
    Tuple event_copy = *event;
    size_t response = carried + event_copy.SerializedSize();
    Send(ctx, leaf_loc, ctx->origin, response,
         [this, ctx, chain = std::move(chain),
          event_copy = std::move(event_copy)]() mutable {
           // Step 2 (§4): bottom-up re-execution at the querying node.
           double delay = static_cast<double>(chain.size()) *
                          cost->per_rederivation_s;
           After(delay, [this, ctx, chain = std::move(chain),
                         event_copy = std::move(event_copy)]() {
             ProvTree tree;
             tree.set_event(event_copy);
             Tuple current = event_copy;
             for (size_t i = chain.size(); i-- > 0;) {
               const QStep& step = chain[i];
               const Rule* rule = impl->program->FindRule(step.rule_id);
               if (rule == nullptr) {
                 Release(ctx);
                 return;
               }
               Result<Tuple> head =
                   ReExecuteRule(*rule, current, step.slow, *impl->fns);
               if (!head.ok()) {
                 Release(ctx);  // spurious branch, pruned
                 return;
               }
               tree.AppendStep(ProvStep{step.rule_id, *head, step.slow});
               current = *head;
             }
             if (!tree.empty() && tree.Output() == ctx->output) {
               ctx->trees.push_back(std::move(tree));
             }
             Release(ctx);
           });
         });
  }

  void StartChain(CtxPtr ctx) {
    const ProvTable& prov =
        impl->kind == DistributedQuerier::Impl::Kind::kBasic
            ? impl->basic->ProvAt(ctx->origin)
            : impl->advanced->ProvAt(ctx->origin);
    auto rows = prov.FindByVid(ctx->output.Vid());
    if (rows.empty()) {
      ctx->pending = 1;
      Fail(ctx, Status::NotFound("no prov entry for " +
                                 ctx->output.ToString()));
      return;
    }
    bool with_evid = impl->kind == DistributedQuerier::Impl::Kind::kAdvanced;
    // Rows are variable-length (per-row rule references and evids): charge
    // each row's own serialized size rather than assuming uniformity.
    for (const ProvEntry* row : rows) {
      Fetch(ctx, 1, row->SerializedSize(with_evid));
    }
    std::vector<const ProvEntry*> selected;
    for (const ProvEntry* row : rows) {
      if (with_evid && ctx->evid.has_value() && row->evid != *ctx->evid) {
        continue;
      }
      selected.push_back(row);
    }
    if (selected.empty()) {
      ctx->pending = 1;
      Fail(ctx, Status::NotFound("no derivation found for " +
                                 ctx->output.ToString()));
      return;
    }
    ctx->pending = static_cast<int>(selected.size());
    for (const ProvEntry* row : selected) {
      NodeRid at = row->rule;
      Vid target_evid = row->evid;
      Send(ctx, ctx->origin, at.loc, cost->request_bytes,
           [this, ctx, at, target_evid]() {
             ChainStep(ctx, at, {}, target_evid, 0);
           });
    }
  }

  // --- ExSPAN ----------------------------------------------------------

  // Walks the prov/ruleExec rows for `vid` at `loc`; `above` holds the
  // steps already collected between the output and this tuple (output
  // side first). Owns one branch token.
  void ExspanStep(CtxPtr ctx, Vid vid, NodeId loc,
                  std::vector<ProvStep> above, size_t carried,
                  size_t depth) {
    if (depth > kMaxDepth) {
      Fail(ctx, Status::Internal("query exceeded depth limit"));
      return;
    }
    const Tuple* tuple = impl->exspan->TuplesAt(loc).Find(vid);
    if (tuple == nullptr) tuple = impl->exspan->EventsAt(loc).Find(vid);
    if (tuple == nullptr) {
      Fail(ctx, Status::NotFound("no materialized tuple for vid"));
      return;
    }
    Fetch(ctx, 1, tuple->SerializedSize());
    auto prov_rows = impl->exspan->ProvAt(loc).FindByVid(vid);
    if (prov_rows.empty()) {
      Fail(ctx, Status::NotFound("no prov entry for vid"));
      return;
    }
    for (const ProvEntry* row : prov_rows) {
      Fetch(ctx, 1, row->SerializedSize(false));
    }
    if (Trace().enabled()) {
      Trace().Instant(loc, TraceCat::kQuery, "exspan_step",
                      "\"qid\": " + std::to_string(ctx->qid) +
                          ", \"rows\": " + std::to_string(prov_rows.size()) +
                          ", \"depth\": " + std::to_string(depth));
    }
    ctx->pending += static_cast<int>(prov_rows.size()) - 1;
    double delay = ProcessingDelay(1 + prov_rows.size(),
                                   tuple->SerializedSize());
    Tuple tuple_copy = *tuple;
    size_t new_carried = carried + tuple_copy.SerializedSize() + 44;

    After(delay, [this, ctx, loc, prov_rows, above = std::move(above),
                  tuple_copy = std::move(tuple_copy), new_carried,
                  depth]() mutable {
      for (const ProvEntry* row : prov_rows) {
        if (row->rule.IsNull()) {
          // Base/input leaf: the derivation is complete.
          if (above.empty()) {
            // The queried tuple itself is a base tuple: no derivation.
            Release(ctx);
            continue;
          }
          if (ctx->evid.has_value() && tuple_copy.Vid() != *ctx->evid) {
            Release(ctx);
            continue;
          }
          std::vector<ProvStep> steps(above.rbegin(), above.rend());
          ProvTree tree(tuple_copy, std::move(steps));
          Send(ctx, loc, ctx->origin, new_carried,
               [this, ctx, tree = std::move(tree)]() mutable {
                 if (tree.Output() == ctx->output) {
                   ctx->trees.push_back(std::move(tree));
                 }
                 Release(ctx);
               });
          continue;
        }
        NodeRid rule_ref = row->rule;
        Send(ctx, loc, rule_ref.loc, new_carried,
             [this, ctx, rule_ref, above, tuple_copy, new_carried,
              depth]() mutable {
               ExpandRuleExec(ctx, rule_ref, std::move(above),
                              std::move(tuple_copy), new_carried, depth);
             });
      }
    });
  }

  void ExpandRuleExec(CtxPtr ctx, NodeRid at, std::vector<ProvStep> above,
                      Tuple derived, size_t carried, size_t depth) {
    auto execs = impl->exspan->RuleExecAt(at.loc).FindByRid(at.rid);
    if (execs.empty()) {
      Fail(ctx, Status::NotFound("dangling RID"));
      return;
    }
    ctx->pending += static_cast<int>(execs.size()) - 1;
    for (const RuleExecEntry* exec : execs) {
      Fetch(ctx, 1, exec->SerializedSize(false));
      if (exec->vids.empty()) {
        Fail(ctx, Status::Internal("ExSPAN ruleExec row without vids"));
        continue;
      }
      std::vector<Tuple> slow;
      bool ok = true;
      size_t slow_bytes = 0;
      for (size_t i = 1; i < exec->vids.size(); ++i) {
        const Tuple* st = impl->exspan->TuplesAt(exec->rloc).Find(
            exec->vids[i]);
        if (st == nullptr) {
          Fail(ctx, Status::NotFound("unresolvable slow-tuple vid"));
          ok = false;
          break;
        }
        Fetch(ctx, 1, st->SerializedSize());
        slow_bytes += st->SerializedSize();
        slow.push_back(*st);
      }
      if (!ok) continue;
      std::vector<ProvStep> next_above = above;
      next_above.push_back(ProvStep{exec->rule_id, derived, slow});
      double delay = ProcessingDelay(exec->vids.size(), slow_bytes);
      Vid event_vid = exec->vids[0];
      NodeId rloc = exec->rloc;
      size_t next_carried = carried + slow_bytes + 64;
      After(delay, [this, ctx, event_vid, rloc,
                    next_above = std::move(next_above), next_carried,
                    depth]() mutable {
        ExspanStep(ctx, event_vid, rloc, std::move(next_above),
                   next_carried, depth + 1);
      });
    }
  }

  void StartExspan(CtxPtr ctx) {
    ctx->pending = 1;
    ExspanStep(ctx, ctx->output.Vid(), ctx->origin, {}, 0, 0);
  }
};

}  // namespace

void DistributedQuerier::QueryAsync(const Tuple& output, const Vid* evid,
                                    SimTime when, double deadline_s,
                                    Callback cb) {
  auto ctx = std::make_shared<Impl::Ctx>();
  ctx->output = output;
  if (evid != nullptr) ctx->evid = *evid;
  ctx->origin = output.Location();
  ctx->cb = std::move(cb);
  if (deadline_s <= 0) deadline_s = default_deadline_s_;

  if (!impl_->protocol) {
    MessageChannel* chan =
        transport_ != nullptr ? static_cast<MessageChannel*>(transport_.get())
                              : &net_;
    auto* proto = new Protocol{this,  topology_,       queue_,
                               chan,  &cost_,          impl_.get(),
                               &continuations_, &next_continuation_};
    impl_->protocol = std::shared_ptr<void>(
        proto, [](void* p) { delete static_cast<Protocol*>(p); });
  }
  Protocol* proto = static_cast<Protocol*>(impl_->protocol.get());
  ctx->qid = next_query_id_++;
  queue_->ScheduleAt(when, [this, proto, ctx]() {
    ctx->start = queue_->now();
    GlobalMetrics().GetCounter("query.started").IncrementAt(ctx->origin);
    if (Trace().enabled()) {
      Trace().AsyncBegin(ctx->origin, TraceCat::kQuery, "query", ctx->qid,
                         "\"output\": \"" + ctx->output.relation() + "\"");
    }
    if (impl_->kind == Impl::Kind::kExspan) {
      proto->StartExspan(ctx);
    } else {
      proto->StartChain(ctx);
    }
  });
  if (deadline_s > 0) {
    // The deadline completes the callback even when loss or a partition
    // orphans every branch; stragglers finishing later are dropped by
    // the `completed` guard.
    queue_->ScheduleAt(when + deadline_s, [ctx, deadline_s]() {
      if (ctx->completed) return;
      ctx->completed = true;
      MetricsRegistry& reg = GlobalMetrics();
      reg.GetCounter("query.deadline_exceeded").IncrementAt(ctx->origin);
      reg.GetCounter("query.failed").IncrementAt(ctx->origin);
      if (Trace().enabled()) {
        Trace().AsyncEnd(ctx->origin, TraceCat::kQuery, "query", ctx->qid,
                         "\"outcome\": \"deadline_exceeded\"");
      }
      ctx->cb(Status::DeadlineExceeded(
          "query missed its " + std::to_string(deadline_s) + "s deadline"));
    });
  }
}

Result<QueryResult> DistributedQuerier::QueryAndWait(const Tuple& output,
                                                     const Vid* evid) {
  std::optional<Result<QueryResult>> out;
  QueryAsync(output, evid, queue_->now(),
             [&out](Result<QueryResult> res) { out = std::move(res); });
  queue_->RunAll();
  if (!out.has_value()) {
    // Lost query traffic orphaned every remaining branch and no deadline
    // was set: report it instead of aborting the process.
    return Status::DeadlineExceeded(
        "query did not complete: query traffic was lost in transit for " +
        output.ToString());
  }
  return std::move(*out);
}

}  // namespace dpc
