// Binary snapshots of a recorder's per-node provenance state. The paper
// measures storage by serializing the per-node prov/ruleExec tables to
// binary files; this module makes that operation a first-class feature so
// a deployment can checkpoint provenance and reload it after a restart
// (queries over a reloaded snapshot return the same trees).
#ifndef DPC_CORE_SNAPSHOT_H_
#define DPC_CORE_SNAPSHOT_H_

#include <vector>

#include "src/core/prov_tables.h"
#include "src/util/result.h"
#include "src/util/serial.h"

namespace dpc {

// A node's provenance storage in portable form.
struct NodeSnapshot {
  NodeId node = kNullNode;
  bool prov_with_evid = false;
  bool rule_exec_with_next = false;
  std::vector<ProvEntry> prov;
  std::vector<RuleExecEntry> rule_exec;
  std::vector<RuleExecNodeEntry> exec_nodes;
  std::vector<RuleExecLinkEntry> exec_links;
  std::vector<Tuple> events;
  std::vector<Tuple> tuples;

  void Serialize(ByteWriter& w) const;
  static Result<NodeSnapshot> Deserialize(ByteReader& r);
  size_t SerializedSize() const;
};

// Collects a snapshot from per-node tables. `exec_nodes`/`exec_links` are
// only used by the §5.4 inter-class-sharing scheme and may be null.
NodeSnapshot SnapshotTables(NodeId node, const ProvTable& prov,
                            bool prov_with_evid,
                            const RuleExecTable& rule_exec,
                            bool rule_exec_with_next,
                            const TupleStore& events,
                            const TupleStore& tuples,
                            const RuleExecNodeTable* exec_nodes = nullptr,
                            const RuleExecLinkTable* exec_links = nullptr);

// Restores table contents from a snapshot (into freshly constructed
// tables).
struct RestoredTables {
  ProvTable prov;
  RuleExecTable rule_exec;
  RuleExecNodeTable exec_nodes;
  RuleExecLinkTable exec_links;
  TupleStore events;
  TupleStore tuples;

  RestoredTables(bool prov_with_evid, bool rule_exec_with_next)
      : prov(prov_with_evid), rule_exec(rule_exec_with_next) {}
};

Result<RestoredTables> RestoreTables(const NodeSnapshot& snapshot);

}  // namespace dpc

#endif  // DPC_CORE_SNAPSHOT_H_
