#include "src/core/prov_tables.h"

#include <utility>

namespace dpc {

namespace {

// Content key for row-level deduplication. `size_hint` pre-sizes the
// scratch buffer (entry sizes are known arithmetically).
template <typename SerializeFn>
Sha1Digest ContentKey(size_t size_hint, SerializeFn&& serialize) {
  ByteWriter w;
  w.Reserve(size_hint);
  serialize(w);
  return Sha1::Hash(w.bytes().data(), w.size());
}

void PutNodeId(ByteWriter& w, NodeId n) {
  w.PutU32(static_cast<uint32_t>(n));
}

// Fixed wire widths of the digest-based columns.
constexpr size_t kNodeIdSize = 4;
constexpr size_t kDigestSize = 20;
constexpr size_t kNodeRidSize = kNodeIdSize + kDigestSize;

}  // namespace

void NodeRid::Serialize(ByteWriter& w) const {
  PutNodeId(w, loc);
  w.PutDigest(rid);
}

Result<NodeRid> NodeRid::Deserialize(ByteReader& r) {
  NodeRid out;
  DPC_ASSIGN_OR_RETURN(uint32_t loc, r.GetU32());
  out.loc = static_cast<NodeId>(loc);
  DPC_ASSIGN_OR_RETURN(out.rid, r.GetDigest());
  return out;
}

std::string NodeRid::ToString() const {
  if (IsNull()) return "(NULL, NULL)";
  return "(n" + std::to_string(loc) + ", " + rid.ToHex(4) + ")";
}

void ProvEntry::Serialize(ByteWriter& w, bool with_evid) const {
  PutNodeId(w, loc);
  w.PutDigest(vid);
  rule.Serialize(w);
  if (with_evid) w.PutDigest(evid);
}

size_t ProvEntry::SerializedSize(bool with_evid) const {
  return kNodeIdSize + kDigestSize + kNodeRidSize +
         (with_evid ? kDigestSize : 0);
}

Result<ProvEntry> ProvEntry::Deserialize(ByteReader& r, bool with_evid) {
  ProvEntry e;
  DPC_ASSIGN_OR_RETURN(uint32_t loc, r.GetU32());
  e.loc = static_cast<NodeId>(loc);
  DPC_ASSIGN_OR_RETURN(e.vid, r.GetDigest());
  DPC_ASSIGN_OR_RETURN(e.rule, NodeRid::Deserialize(r));
  if (with_evid) {
    DPC_ASSIGN_OR_RETURN(e.evid, r.GetDigest());
  }
  return e;
}

void RuleExecEntry::Serialize(ByteWriter& w, bool with_next) const {
  PutNodeId(w, rloc);
  w.PutDigest(rid);
  w.PutString(rule_id);
  w.PutVarint(vids.size());
  for (const Vid& v : vids) w.PutDigest(v);
  if (with_next) next.Serialize(w);
}

size_t RuleExecEntry::SerializedSize(bool with_next) const {
  return kNodeIdSize + kDigestSize + StringSerializedSize(rule_id) +
         VarintSize(vids.size()) + kDigestSize * vids.size() +
         (with_next ? kNodeRidSize : 0);
}

Result<RuleExecEntry> RuleExecEntry::Deserialize(ByteReader& r,
                                                 bool with_next) {
  RuleExecEntry e;
  DPC_ASSIGN_OR_RETURN(uint32_t rloc, r.GetU32());
  e.rloc = static_cast<NodeId>(rloc);
  DPC_ASSIGN_OR_RETURN(e.rid, r.GetDigest());
  DPC_ASSIGN_OR_RETURN(e.rule_id, r.GetString());
  DPC_ASSIGN_OR_RETURN(uint64_t n, r.GetVarint());
  for (uint64_t i = 0; i < n; ++i) {
    DPC_ASSIGN_OR_RETURN(Vid v, r.GetDigest());
    e.vids.push_back(v);
  }
  if (with_next) {
    DPC_ASSIGN_OR_RETURN(e.next, NodeRid::Deserialize(r));
  }
  return e;
}

void RuleExecNodeEntry::Serialize(ByteWriter& w) const {
  PutNodeId(w, rloc);
  w.PutDigest(rid);
  w.PutString(rule_id);
  w.PutVarint(vids.size());
  for (const Vid& v : vids) w.PutDigest(v);
}

size_t RuleExecNodeEntry::SerializedSize() const {
  return kNodeIdSize + kDigestSize + StringSerializedSize(rule_id) +
         VarintSize(vids.size()) + kDigestSize * vids.size();
}

Result<RuleExecNodeEntry> RuleExecNodeEntry::Deserialize(ByteReader& r) {
  RuleExecNodeEntry e;
  DPC_ASSIGN_OR_RETURN(uint32_t rloc, r.GetU32());
  e.rloc = static_cast<NodeId>(rloc);
  DPC_ASSIGN_OR_RETURN(e.rid, r.GetDigest());
  DPC_ASSIGN_OR_RETURN(e.rule_id, r.GetString());
  DPC_ASSIGN_OR_RETURN(uint64_t n, r.GetVarint());
  for (uint64_t i = 0; i < n; ++i) {
    DPC_ASSIGN_OR_RETURN(Vid v, r.GetDigest());
    e.vids.push_back(v);
  }
  return e;
}

void RuleExecLinkEntry::Serialize(ByteWriter& w) const {
  PutNodeId(w, rloc);
  w.PutDigest(rid);
  next.Serialize(w);
}

size_t RuleExecLinkEntry::SerializedSize() const {
  return kNodeIdSize + kDigestSize + kNodeRidSize;
}

Result<RuleExecLinkEntry> RuleExecLinkEntry::Deserialize(ByteReader& r) {
  RuleExecLinkEntry e;
  DPC_ASSIGN_OR_RETURN(uint32_t rloc, r.GetU32());
  e.rloc = static_cast<NodeId>(rloc);
  DPC_ASSIGN_OR_RETURN(e.rid, r.GetDigest());
  DPC_ASSIGN_OR_RETURN(e.next, NodeRid::Deserialize(r));
  return e;
}

// --- ProvTable --------------------------------------------------------------

bool ProvTable::Insert(const ProvEntry& e) {
  Sha1Digest key =
      ContentKey(e.SerializedSize(/*with_evid=*/true),
                 [&](ByteWriter& w) { e.Serialize(w, /*with_evid=*/true); });
  if (!content_keys_.insert(key).second) return false;
  by_vid_.emplace(e.vid, rows_.size());
  bytes_ += e.SerializedSize(with_evid_);
  rows_.push_back(e);
  return true;
}

std::vector<const ProvEntry*> ProvTable::FindByVid(const Vid& vid) const {
  std::vector<const ProvEntry*> out;
  auto [lo, hi] = by_vid_.equal_range(vid);
  for (auto it = lo; it != hi; ++it) out.push_back(&rows_[it->second]);
  return out;
}

// --- RuleExecTable ----------------------------------------------------------

bool RuleExecTable::Insert(const RuleExecEntry& e) {
  Sha1Digest key =
      ContentKey(e.SerializedSize(/*with_next=*/true),
                 [&](ByteWriter& w) { e.Serialize(w, /*with_next=*/true); });
  if (!content_keys_.insert(key).second) return false;
  by_rid_.emplace(e.rid, rows_.size());
  bytes_ += e.SerializedSize(with_next_);
  rows_.push_back(e);
  return true;
}

std::vector<const RuleExecEntry*> RuleExecTable::FindByRid(
    const Rid& rid) const {
  std::vector<const RuleExecEntry*> out;
  auto [lo, hi] = by_rid_.equal_range(rid);
  for (auto it = lo; it != hi; ++it) out.push_back(&rows_[it->second]);
  return out;
}

// --- RuleExecNodeTable ------------------------------------------------------

bool RuleExecNodeTable::Insert(const RuleExecNodeEntry& e) {
  auto [it, inserted] = by_rid_.emplace(e.rid, rows_.size());
  if (!inserted) return false;
  bytes_ += e.SerializedSize();
  rows_.push_back(e);
  return true;
}

const RuleExecNodeEntry* RuleExecNodeTable::FindByRid(const Rid& rid) const {
  auto it = by_rid_.find(rid);
  return it == by_rid_.end() ? nullptr : &rows_[it->second];
}

// --- RuleExecLinkTable ------------------------------------------------------

bool RuleExecLinkTable::Insert(const RuleExecLinkEntry& e) {
  Sha1Digest key = ContentKey(e.SerializedSize(),
                              [&](ByteWriter& w) { e.Serialize(w); });
  if (!content_keys_.insert(key).second) return false;
  by_rid_.emplace(e.rid, rows_.size());
  bytes_ += e.SerializedSize();
  rows_.push_back(e);
  return true;
}

std::vector<const RuleExecLinkEntry*> RuleExecLinkTable::FindByRid(
    const Rid& rid) const {
  std::vector<const RuleExecLinkEntry*> out;
  auto [lo, hi] = by_rid_.equal_range(rid);
  for (auto it = lo; it != hi; ++it) out.push_back(&rows_[it->second]);
  return out;
}

// --- TupleStore -------------------------------------------------------------

bool TupleStore::Put(const Tuple& t) {
  // Identity is computed before taking the lock: Vid/SerializedSize are
  // themselves thread-safe and possibly slow on first touch.
  const Vid& vid = t.Vid();
  size_t content_bytes = t.SerializedSize();
  MutexLock lock(mu_);
  auto it = tuples_.find(vid);
  if (it != tuples_.end()) return false;
  tuples_.emplace(vid, MakeTupleRef(t));
  bytes_ += kDigestSize + content_bytes;  // key digest + content
  return true;
}

bool TupleStore::Put(TupleRef t) {
  const Vid& vid = t->Vid();
  size_t content_bytes = t->SerializedSize();
  MutexLock lock(mu_);
  auto [it, inserted] = tuples_.emplace(vid, std::move(t));
  if (inserted) {
    bytes_ += kDigestSize + content_bytes;
  }
  return inserted;
}

const Tuple* TupleStore::Find(const Vid& vid) const {
  MutexLock lock(mu_);
  auto it = tuples_.find(vid);
  return it == tuples_.end() ? nullptr : it->second.get();
}

}  // namespace dpc
