#include "src/core/wal_recorder.h"

#include <utility>

#include "src/obs/metrics.h"
#include "src/obs/trace.h"
#include "src/util/logging.h"
#include "src/util/perf.h"

namespace dpc {

WalRecorder::WalRecorder(ProvenanceRecorder* inner, const Program* program,
                         WalOptions options)
    : inner_(inner), program_(program), options_(std::move(options)) {
  for (const Rule& rule : program_->rules()) {
    rules_by_id_[rule.id] = &rule;
  }
  MetricsRegistry& reg = GlobalMetrics();
  metrics_.records = &reg.GetCounter("wal.records");
  metrics_.bytes = &reg.GetCounter("wal.bytes");
  metrics_.checkpoints = &reg.GetCounter("wal.checkpoints");
  metrics_.checkpoint_bytes = &reg.GetCounter("wal.checkpoint_bytes");
  metrics_.replayed = &reg.GetCounter("wal.records_replayed");
  metrics_.corrupt_frames = &reg.GetCounter("wal.corrupt_frames");
  metrics_.decode_errors = &reg.GetCounter("wal.decode_errors");
  metrics_.append_errors = &reg.GetCounter("wal.append_errors");
}

Result<std::unique_ptr<WalRecorder>> WalRecorder::Attach(
    ProvenanceRecorder* inner, const Program* program, int num_nodes,
    WalOptions options) {
  DPC_CHECK(inner != nullptr && program != nullptr);
  if (!inner->SupportsNodeState()) {
    return Status::InvalidArgument(
        inner->name() + " does not support node-state durability");
  }
  if (options.dir.empty()) {
    return Status::InvalidArgument("WAL directory must be set");
  }
  std::unique_ptr<WalRecorder> wal(
      new WalRecorder(inner, program, std::move(options)));
  wal->logs_.resize(static_cast<size_t>(num_nodes));
  for (NodeId n = 0; n < num_nodes; ++n) {
    // Sequence numbers continue past everything already on disk, so a
    // restarted deployment appends records replay will order correctly.
    uint64_t last = 0;
    Result<CheckpointData> ckpt =
        ReadCheckpoint(CheckpointPath(wal->options_.dir, n));
    if (ckpt.ok()) last = ckpt->watermark;
    DPC_ASSIGN_OR_RETURN(WalReadResult log,
                         ReadWal(WalPath(wal->options_.dir, n)));
    for (const WalRecord& rec : log.records) {
      if (rec.seq > last) last = rec.seq;
    }
    if (log.corrupt_frames != 0) {
      // A torn tail from a crash. Appending after it would strand every
      // new record behind a frame ReadWal refuses to cross — a later
      // Recover() would silently lose everything this process journals.
      // Cut the log back to its intact prefix before reopening; the loss
      // itself is reported by the next Recover().
      DPC_LOG(Warning) << "wal: node " << n << " log has a corrupt tail; "
                       << "truncating to " << log.bytes_scanned
                       << " intact bytes";
      DPC_RETURN_NOT_OK(
          TruncateWal(WalPath(wal->options_.dir, n), log.bytes_scanned));
      wal->logs_[n].corrupt_frames_truncated = log.corrupt_frames;
    }
    DPC_ASSIGN_OR_RETURN(
        WalWriter writer,
        WalWriter::Open(WalPath(wal->options_.dir, n),
                        wal->options_.sync_each_record,
                        wal->options_.flush_each_record));
    wal->logs_[n].writer = std::move(writer);
    wal->logs_[n].next_seq = last + 1;
  }
  return wal;
}

std::vector<uint8_t> WalRecorder::EncodeMeta(const ProvMeta& meta) const {
  ByteWriter w;
  inner_->SerializeMeta(meta, w);
  return w.Take();
}

void WalRecorder::Log(WalRecord record) {
  NodeLog& log = logs_[static_cast<size_t>(record.node)];
  record.seq = log.next_seq++;
  uint64_t before = log.writer.bytes_written();
  Status st = log.writer.Append(record);
  if (!st.ok()) {
    // The mutation goes unjournaled: from here on the journal is only a
    // prefix of the in-memory state, and a crash loses the divergence.
    // Under the fsync-per-record contract that is not a degradation to
    // ride out — acknowledging unjournaled mutations is a lie — so fail
    // hard; otherwise mark durability as degraded (sticky, metered) and
    // keep the run alive.
    DPC_CHECK(!options_.sync_each_record)
        << "wal: append failed under sync_each_record: " << st.ToString();
    DPC_LOG(Error) << "wal: append failed: " << st.ToString();
    durability_degraded_.store(true, std::memory_order_relaxed);
    metrics_.append_errors->IncrementAt(record.node);
    return;
  }
  records_logged_.fetch_add(1, std::memory_order_relaxed);
  metrics_.records->IncrementAt(record.node);
  metrics_.bytes->IncrementAt(record.node,
                              log.writer.bytes_written() - before);
}

ProvMeta WalRecorder::OnInject(NodeId node, const TupleRef& event) {
  WalRecord rec;
  rec.kind = WalRecordKind::kInject;
  rec.node = node;
  rec.tuple = *event;
  Log(std::move(rec));
  return inner_->OnInject(node, event);
}

ProvMeta WalRecorder::OnRuleFired(NodeId node, const Rule& rule,
                                  const TupleRef& event, const ProvMeta& meta,
                                  const std::vector<TupleRef>& slow,
                                  const TupleRef& head) {
  WalRecord rec;
  rec.kind = WalRecordKind::kRuleFired;
  rec.node = node;
  rec.rule_id = rule.id;
  rec.tuple = *event;
  rec.head = *head;
  rec.slow.reserve(slow.size());
  for (const TupleRef& t : slow) rec.slow.push_back(*t);
  rec.meta = EncodeMeta(meta);
  Log(std::move(rec));
  return inner_->OnRuleFired(node, rule, event, meta, slow, head);
}

void WalRecorder::OnOutput(NodeId node, const TupleRef& output,
                           const ProvMeta& meta) {
  WalRecord rec;
  rec.kind = WalRecordKind::kOutput;
  rec.node = node;
  rec.tuple = *output;
  rec.meta = EncodeMeta(meta);
  Log(std::move(rec));
  inner_->OnOutput(node, output, meta);
}

void WalRecorder::OnArrival(NodeId node, const TupleRef& tuple,
                            const ProvMeta& meta) {
  WalRecord rec;
  rec.kind = WalRecordKind::kArrival;
  rec.node = node;
  rec.tuple = *tuple;
  rec.meta = EncodeMeta(meta);
  Log(std::move(rec));
  inner_->OnArrival(node, tuple, meta);
}

bool WalRecorder::OnSlowInsert(NodeId node, const TupleRef& t) {
  WalRecord rec;
  rec.kind = WalRecordKind::kSlowInsert;
  rec.node = node;
  rec.tuple = *t;
  Log(std::move(rec));
  return inner_->OnSlowInsert(node, t);
}

void WalRecorder::OnSlowDelete(NodeId node, const Tuple& t) {
  WalRecord rec;
  rec.kind = WalRecordKind::kSlowDelete;
  rec.node = node;
  rec.tuple = t;
  Log(std::move(rec));
  inner_->OnSlowDelete(node, t);
}

void WalRecorder::OnControlSignal(NodeId node) {
  WalRecord rec;
  rec.kind = WalRecordKind::kControlSignal;
  rec.node = node;
  Log(std::move(rec));
  inner_->OnControlSignal(node);
}

Status WalRecorder::Checkpoint() {
  uint64_t total_bytes = 0;
  for (NodeId n = 0; n < static_cast<NodeId>(logs_.size()); ++n) {
    CheckpointData data;
    data.node = n;
    data.watermark = logs_[n].next_seq - 1;
    data.epoch = inner_->StateEpoch(n);
    ByteWriter w;
    inner_->SerializeNodeState(n, w);
    data.state = w.Take();
    total_bytes += data.state.size();
    DPC_RETURN_NOT_OK(WriteCheckpoint(CheckpointPath(options_.dir, n), data,
                                      options_.sync_each_record));
    metrics_.checkpoint_bytes->IncrementAt(n, data.state.size());
  }
  // Only after every node's checkpoint landed do the logs become
  // redundant; a crash in the loop above leaves old checkpoints plus
  // complete logs, which recovery handles.
  for (NodeLog& log : logs_) {
    DPC_RETURN_NOT_OK(log.writer.Reset());
  }
  ++checkpoints_cut_;
  metrics_.checkpoints->Increment();
  if (Trace().enabled()) {
    Trace().Instant(-1, TraceCat::kRecorder, "wal.checkpoint",
                    "\"nodes\": " + std::to_string(logs_.size()) +
                        ", \"bytes\": " + std::to_string(total_bytes));
  }
  return Status::OK();
}

Status WalRecorder::ReplayRecord(const WalRecord& rec) {
  switch (rec.kind) {
    case WalRecordKind::kInject:
      inner_->OnInject(rec.node, MakeTupleRef(rec.tuple));
      return Status::OK();
    case WalRecordKind::kRuleFired: {
      auto it = rules_by_id_.find(rec.rule_id);
      if (it == rules_by_id_.end()) {
        return Status::ParseError("wal: unknown rule '" + rec.rule_id +
                                  "' (program changed since the log?)");
      }
      ByteReader r(rec.meta);
      DPC_ASSIGN_OR_RETURN(ProvMeta meta, inner_->DeserializeMeta(r));
      std::vector<TupleRef> slow;
      slow.reserve(rec.slow.size());
      for (const Tuple& t : rec.slow) slow.push_back(MakeTupleRef(t));
      inner_->OnRuleFired(rec.node, *it->second, MakeTupleRef(rec.tuple),
                          meta, slow, MakeTupleRef(rec.head));
      return Status::OK();
    }
    case WalRecordKind::kOutput: {
      ByteReader r(rec.meta);
      DPC_ASSIGN_OR_RETURN(ProvMeta meta, inner_->DeserializeMeta(r));
      inner_->OnOutput(rec.node, MakeTupleRef(rec.tuple), meta);
      return Status::OK();
    }
    case WalRecordKind::kArrival: {
      ByteReader r(rec.meta);
      DPC_ASSIGN_OR_RETURN(ProvMeta meta, inner_->DeserializeMeta(r));
      inner_->OnArrival(rec.node, MakeTupleRef(rec.tuple), meta);
      return Status::OK();
    }
    case WalRecordKind::kSlowInsert:
      inner_->OnSlowInsert(rec.node, MakeTupleRef(rec.tuple));
      return Status::OK();
    case WalRecordKind::kSlowDelete:
      inner_->OnSlowDelete(rec.node, rec.tuple);
      return Status::OK();
    case WalRecordKind::kControlSignal:
      inner_->OnControlSignal(rec.node);
      return Status::OK();
  }
  return Status::ParseError("wal: unknown record kind");
}

Result<WalRecoveryStats> WalRecorder::Recover() {
  WalRecoveryStats stats;
  std::vector<std::pair<NodeId, uint64_t>> corrupt_by_node;
  NodeId failed_node = kNullNode;
  Status failure = Status::OK();
  {
    // Replay re-executes recorder work the original run already counted;
    // suppress its side channels so accounting stays a pure function of
    // the live run (docs/persistence.md). The wal.* bumps describing the
    // recovery itself happen below, after the guards release.
    MetricsPauseGuard pause_metrics;
    IdentityPauseGuard pause_identity;
    for (NodeId n = 0; n < static_cast<NodeId>(logs_.size()); ++n) {
      uint64_t watermark = 0;
      Result<CheckpointData> ckpt =
          ReadCheckpoint(CheckpointPath(options_.dir, n));
      if (ckpt.ok()) {
        ByteReader r(ckpt->state);
        Status st = inner_->RestoreNodeState(n, r);
        if (!st.ok()) {
          failed_node = n;
          failure = std::move(st);
          break;
        }
        watermark = ckpt->watermark;
        ++stats.nodes_with_checkpoint;
      } else if (ckpt.status().code() != StatusCode::kNotFound) {
        // The log beyond the watermark was truncated when this checkpoint
        // was cut, so a corrupt checkpoint is unrecoverable data loss — a
        // reported error, never an abort.
        failed_node = n;
        failure = ckpt.status();
        break;
      }
      Result<WalReadResult> log = ReadWal(WalPath(options_.dir, n));
      if (!log.ok()) {
        failed_node = n;
        failure = log.status();
        break;
      }
      // A torn or bit-flipped tail: everything before it is intact and
      // replayed; the loss is reported, never trusted or fatal. Includes
      // frames Attach already truncated away (reported once, here).
      uint64_t corrupt =
          log->corrupt_frames + logs_[n].corrupt_frames_truncated;
      logs_[n].corrupt_frames_truncated = 0;
      if (corrupt != 0) {
        stats.corrupt_frames += corrupt;
        corrupt_by_node.emplace_back(n, corrupt);
      }
      for (const WalRecord& rec : log->records) {
        if (rec.seq <= watermark) {
          ++stats.records_skipped;
          continue;
        }
        Status st = ReplayRecord(rec);
        if (!st.ok()) {
          failed_node = n;
          failure = std::move(st);
          break;
        }
        ++stats.records_replayed;
      }
      if (!failure.ok()) break;
    }
  }
  for (const auto& [node, count] : corrupt_by_node) {
    metrics_.corrupt_frames->IncrementAt(node, count);
  }
  if (!failure.ok()) {
    metrics_.decode_errors->IncrementAt(failed_node);
    return failure;
  }
  metrics_.replayed->Increment(stats.records_replayed);
  if (Trace().enabled()) {
    Trace().Instant(-1, TraceCat::kRecorder, "wal.recover",
                    "\"replayed\": " + std::to_string(stats.records_replayed) +
                        ", \"skipped\": " +
                        std::to_string(stats.records_skipped));
  }
  return stats;
}

}  // namespace dpc
