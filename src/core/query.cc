#include "src/core/query.h"

#include <algorithm>

#include "src/util/logging.h"

namespace dpc {

Result<Tuple> ReExecuteRule(const Rule& rule, const Tuple& event,
                            const std::vector<Tuple>& slow_tuples,
                            const FunctionRegistry& fns) {
  Bindings env;
  if (!MatchAtom(rule.EventAtom(), event, env)) {
    return Status::FailedPrecondition("event " + event.ToString() +
                                      " does not match rule " + rule.id);
  }
  std::vector<const Atom*> conditions = rule.ConditionAtoms();
  if (conditions.size() != slow_tuples.size()) {
    return Status::FailedPrecondition(
        "rule " + rule.id + " expects " +
        std::to_string(conditions.size()) + " condition tuples, got " +
        std::to_string(slow_tuples.size()));
  }
  for (size_t i = 0; i < conditions.size(); ++i) {
    if (!MatchAtom(*conditions[i], slow_tuples[i], env)) {
      return Status::FailedPrecondition(
          "recorded tuple " + slow_tuples[i].ToString() +
          " does not match condition atom " + conditions[i]->ToString() +
          " of rule " + rule.id);
    }
  }
  for (const Assignment& asn : rule.assignments) {
    DPC_ASSIGN_OR_RETURN(Value v, EvalExpr(*asn.expr, env, fns));
    auto [it, inserted] = env.emplace(asn.var, v);
    if (!inserted && it->second != v) {
      return Status::FailedPrecondition("conflicting assignment in rule " +
                                        rule.id);
    }
  }
  for (const Constraint& c : rule.constraints) {
    DPC_ASSIGN_OR_RETURN(Value v, EvalExpr(*c.expr, env, fns));
    if (!v.Truthy()) {
      return Status::FailedPrecondition("constraint " + c.ToString() +
                                        " fails in rule " + rule.id);
    }
  }
  return InstantiateAtom(rule.head, env);
}

namespace {

constexpr size_t kMaxWalkDepth = 100000;

// Latency / traffic bookkeeping for one query execution.
class Accounting {
 public:
  Accounting(const Topology* topo, const QueryCostModel* cost, NodeId start)
      : topo_(topo), cost_(cost), pos_(start), querier_(start) {}

  void TouchEntries(size_t n) {
    entries_ += n;
    latency_ += static_cast<double>(n) * cost_->per_entry_s;
  }

  void FetchBytes(size_t b) {
    bytes_ += b;
    carried_ += b;
    latency_ += static_cast<double>(b) * cost_->per_processed_byte_s;
  }

  void Rederive(size_t n) {
    latency_ += static_cast<double>(n) * cost_->per_rederivation_s;
  }

  // Move the query cursor to `n`, carrying the accumulated response.
  void MoveTo(NodeId n) {
    if (n == pos_) return;
    latency_ += TransferLatency(pos_, n, carried_ + cost_->request_bytes);
    hops_ += topo_->Distance(pos_, n);
    pos_ = n;
  }

  // Ship the accumulated response back to the querying node.
  void ReturnToQuerier() { MoveTo(querier_); }

  void FillResult(QueryResult& res) const {
    res.latency_s = latency_;
    res.entries_touched = entries_;
    res.bytes_transferred = bytes_;
    res.hops = hops_;
  }

  NodeId pos() const { return pos_; }

 private:
  double TransferLatency(NodeId a, NodeId b, size_t bytes) const {
    std::vector<NodeId> path = topo_->Path(a, b);
    double t = 0;
    for (size_t i = 0; i + 1 < path.size(); ++i) {
      const LinkProps& link = topo_->Link(path[i], path[i + 1]);
      t += link.latency_s +
           static_cast<double>(bytes) * 8.0 / link.bandwidth_bps;
    }
    return t;
  }

  const Topology* topo_;
  const QueryCostModel* cost_;
  double latency_ = 0;
  size_t entries_ = 0;
  size_t bytes_ = 0;
  size_t carried_ = 0;
  int hops_ = 0;
  NodeId pos_;
  NodeId querier_;
};

// One element of a fetched (compact) provenance chain, root side first.
struct WalkElem {
  std::string rule_id;
  NodeId loc = kNullNode;
  std::vector<Tuple> slow;
  Vid event_vid{};         // leaf elements of Basic chains
  bool has_event_vid = false;
};

// Rebuilds the full provenance tree from a compact chain (root-side first)
// plus the input event, re-executing each rule bottom-up (§4 step 2).
// Returns NotFound when the chain does not actually derive `output`.
Result<ProvTree> ReconstructTree(const std::vector<WalkElem>& chain,
                                 const Tuple& event, const Tuple& output,
                                 const Program& program,
                                 const FunctionRegistry& fns,
                                 Accounting& acct) {
  ProvTree tree;
  tree.set_event(event);
  Tuple current = event;
  for (size_t i = chain.size(); i-- > 0;) {
    const WalkElem& elem = chain[i];
    const Rule* rule = program.FindRule(elem.rule_id);
    if (rule == nullptr) {
      return Status::Internal("recorded unknown rule id " + elem.rule_id);
    }
    acct.Rederive(1);
    Result<Tuple> head = ReExecuteRule(*rule, current, elem.slow, fns);
    if (!head.ok()) {
      // Spurious branch (shared storage): the recorded tuples do not apply
      // to this event.
      return Status::NotFound("branch does not derive the queried tuple: " +
                              head.status().message());
    }
    tree.AppendStep(ProvStep{elem.rule_id, *head, elem.slow});
    current = *head;
  }
  if (tree.empty() || tree.Output() != output) {
    return Status::NotFound("reconstructed derivation does not end at " +
                            output.ToString());
  }
  return tree;
}

}  // namespace

// --- ExSPAN -----------------------------------------------------------------

ExspanQuerier::ExspanQuerier(const ExspanRecorder* recorder,
                             const Topology* topology, QueryCostModel cost)
    : recorder_(recorder), topology_(topology), cost_(cost) {
  DPC_CHECK(recorder_ != nullptr);
  DPC_CHECK(topology_ != nullptr);
}

namespace {

// DFS over ExSPAN's prov/ruleExec rows. Produces (event, steps) chains for
// the derivations of `vid`; `steps` is ordered leaf-first.
struct ExspanChain {
  Tuple event;
  std::vector<ProvStep> steps;  // leaf-first
};

Status ExspanWalk(const ExspanRecorder& rec, const Topology& topo,
                  const Vid& vid, NodeId loc, size_t depth, Accounting& acct,
                  std::vector<ExspanChain>& out) {
  if (depth > kMaxWalkDepth) {
    return Status::Internal("provenance walk exceeded depth limit");
  }
  acct.MoveTo(loc);

  // Resolve the tuple content for this VID.
  const Tuple* tuple = rec.TuplesAt(loc).Find(vid);
  if (tuple == nullptr) tuple = rec.EventsAt(loc).Find(vid);
  if (tuple == nullptr) {
    return Status::NotFound("no materialized tuple for vid " +
                            vid.ToHex(4) + " at node " + std::to_string(loc));
  }
  acct.TouchEntries(1);
  acct.FetchBytes(tuple->SerializedSize());

  std::vector<const ProvEntry*> rows = rec.ProvAt(loc).FindByVid(vid);
  if (rows.empty()) {
    return Status::NotFound("no prov entry for vid " + vid.ToHex(4) +
                            " at node " + std::to_string(loc));
  }
  acct.TouchEntries(rows.size());
  acct.FetchBytes(rows.size() * rows[0]->SerializedSize(false));

  for (const ProvEntry* row : rows) {
    if (row->rule.IsNull()) {
      // Base/input tuple: a derivation leaf.
      out.push_back(ExspanChain{*tuple, {}});
      continue;
    }
    acct.MoveTo(row->rule.loc);
    std::vector<const RuleExecEntry*> execs =
        rec.RuleExecAt(row->rule.loc).FindByRid(row->rule.rid);
    if (execs.empty()) {
      return Status::NotFound("dangling RID " + row->rule.rid.ToHex(4));
    }
    for (const RuleExecEntry* exec : execs) {
      acct.TouchEntries(1);
      acct.FetchBytes(exec->SerializedSize(false));
      if (exec->vids.empty()) {
        return Status::Internal("ExSPAN ruleExec row without body vids");
      }
      // vids[0] is the triggering event; the rest are slow-changing tuples.
      std::vector<Tuple> slow;
      for (size_t i = 1; i < exec->vids.size(); ++i) {
        const Tuple* st = rec.TuplesAt(exec->rloc).Find(exec->vids[i]);
        if (st == nullptr) {
          return Status::NotFound("unresolvable slow-tuple vid " +
                                  exec->vids[i].ToHex(4));
        }
        acct.TouchEntries(1);
        acct.FetchBytes(st->SerializedSize());
        slow.push_back(*st);
      }
      std::vector<ExspanChain> sub;
      DPC_RETURN_NOT_OK(ExspanWalk(rec, topo, exec->vids[0], exec->rloc,
                                   depth + 1, acct, sub));
      for (ExspanChain& chain : sub) {
        chain.steps.push_back(ProvStep{exec->rule_id, *tuple, slow});
        out.push_back(std::move(chain));
      }
    }
  }
  return Status::OK();
}

}  // namespace

Result<QueryResult> ExspanQuerier::Query(const Tuple& output,
                                         const Vid* evid) {
  NodeId querier = output.Location();
  Accounting acct(topology_, &cost_, querier);
  std::vector<ExspanChain> chains;
  DPC_RETURN_NOT_OK(ExspanWalk(*recorder_, *topology_, output.Vid(), querier,
                               0, acct, chains));
  acct.ReturnToQuerier();

  QueryResult res;
  for (ExspanChain& chain : chains) {
    if (chain.steps.empty()) continue;  // the output itself is never a base
    if (evid != nullptr && chain.event.Vid() != *evid) continue;
    res.trees.emplace_back(std::move(chain.event), std::move(chain.steps));
  }
  if (res.trees.empty()) {
    return Status::NotFound("no derivation found for " + output.ToString());
  }
  acct.FillResult(res);
  return res;
}

// --- Basic ------------------------------------------------------------------

BasicQuerier::BasicQuerier(const BasicRecorder* recorder,
                           const Program* program,
                           const FunctionRegistry* fns,
                           const Topology* topology, QueryCostModel cost)
    : recorder_(recorder),
      program_(program),
      fns_(fns),
      topology_(topology),
      cost_(cost) {
  DPC_CHECK(recorder_ != nullptr);
  DPC_CHECK(program_ != nullptr);
  DPC_CHECK(fns_ != nullptr);
  DPC_CHECK(topology_ != nullptr);
}

namespace {

// DFS along (NLoc, NRID) chains of a combined ruleExec table. On reaching a
// leaf, invokes `on_chain(chain)` with elements ordered root-side first.
template <typename RowsForRid, typename OnChain>
Status WalkNextChain(const RowsForRid& rows_for_rid, NodeRid start,
                     Accounting& acct, std::vector<WalkElem>& chain,
                     size_t depth, const OnChain& on_chain) {
  if (depth > kMaxWalkDepth) {
    return Status::Internal("provenance walk exceeded depth limit");
  }
  acct.MoveTo(start.loc);
  std::vector<std::pair<WalkElem, NodeRid>> rows;
  DPC_RETURN_NOT_OK(rows_for_rid(start, acct, rows));
  if (rows.empty()) {
    return Status::NotFound("dangling RID " + start.rid.ToHex(4) +
                            " at node " + std::to_string(start.loc));
  }
  for (auto& [elem, next] : rows) {
    chain.push_back(std::move(elem));
    if (next.IsNull()) {
      DPC_RETURN_NOT_OK(on_chain(chain));
    } else {
      DPC_RETURN_NOT_OK(WalkNextChain(rows_for_rid, next, acct, chain,
                                      depth + 1, on_chain));
      acct.MoveTo(start.loc);  // DFS backtrack for the next branch
    }
    chain.pop_back();
  }
  return Status::OK();
}

}  // namespace

Result<QueryResult> BasicQuerier::Query(const Tuple& output,
                                        const Vid* evid) {
  NodeId querier = output.Location();
  Accounting acct(topology_, &cost_, querier);

  std::vector<const ProvEntry*> prov_rows =
      recorder_->ProvAt(querier).FindByVid(output.Vid());
  if (prov_rows.empty()) {
    return Status::NotFound("no prov entry for " + output.ToString());
  }
  acct.TouchEntries(prov_rows.size());
  acct.FetchBytes(prov_rows.size() * prov_rows[0]->SerializedSize(false));

  // Step 1: fetch the optimized chains; Step 2: reconstruct.
  QueryResult res;
  auto rows_for_rid =
      [this](const NodeRid& at, Accounting& a,
             std::vector<std::pair<WalkElem, NodeRid>>& out) -> Status {
    std::vector<const RuleExecEntry*> execs =
        recorder_->RuleExecAt(at.loc).FindByRid(at.rid);
    for (const RuleExecEntry* exec : execs) {
      a.TouchEntries(1);
      a.FetchBytes(exec->SerializedSize(true));
      WalkElem elem;
      elem.rule_id = exec->rule_id;
      elem.loc = exec->rloc;
      size_t slow_begin = 0;
      if (exec->next.IsNull()) {
        // Leaf row: vids[0] is the input event (Table 2's rid1).
        if (exec->vids.empty()) {
          return Status::Internal("leaf ruleExec row without event vid");
        }
        elem.event_vid = exec->vids[0];
        elem.has_event_vid = true;
        slow_begin = 1;
      }
      for (size_t i = slow_begin; i < exec->vids.size(); ++i) {
        const Tuple* st = recorder_->TuplesAt(exec->rloc).Find(exec->vids[i]);
        if (st == nullptr) {
          return Status::NotFound("unresolvable slow-tuple vid " +
                                  exec->vids[i].ToHex(4));
        }
        a.TouchEntries(1);
        a.FetchBytes(st->SerializedSize());
        elem.slow.push_back(*st);
      }
      out.emplace_back(std::move(elem), exec->next);
    }
    return Status::OK();
  };

  for (const ProvEntry* prov : prov_rows) {
    std::vector<WalkElem> chain;
    Status st = WalkNextChain(
        rows_for_rid, prov->rule, acct, chain, 0,
        [&](const std::vector<WalkElem>& full) -> Status {
          const WalkElem& leaf = full.back();
          if (!leaf.has_event_vid) {
            return Status::Internal("Basic chain leaf lacks an event vid");
          }
          if (evid != nullptr && leaf.event_vid != *evid) {
            return Status::OK();  // filtered out
          }
          const Tuple* event =
              recorder_->EventsAt(leaf.loc).Find(leaf.event_vid);
          if (event == nullptr) {
            return Status::NotFound("input event not materialized at node " +
                                    std::to_string(leaf.loc));
          }
          acct.TouchEntries(1);
          acct.FetchBytes(event->SerializedSize());
          Result<ProvTree> tree = ReconstructTree(full, *event, output,
                                                  *program_, *fns_, acct);
          if (tree.ok()) {
            res.trees.push_back(std::move(tree).value());
          } else if (!tree.status().IsNotFound()) {
            return tree.status();
          }
          return Status::OK();
        });
    DPC_RETURN_NOT_OK(st);
  }
  acct.ReturnToQuerier();

  if (res.trees.empty()) {
    return Status::NotFound("no derivation found for " + output.ToString());
  }
  acct.FillResult(res);
  return res;
}

// --- Advanced ---------------------------------------------------------------

AdvancedQuerier::AdvancedQuerier(const AdvancedRecorder* recorder,
                                 const Program* program,
                                 const FunctionRegistry* fns,
                                 const Topology* topology,
                                 QueryCostModel cost)
    : recorder_(recorder),
      program_(program),
      fns_(fns),
      topology_(topology),
      cost_(cost) {
  DPC_CHECK(recorder_ != nullptr);
  DPC_CHECK(program_ != nullptr);
  DPC_CHECK(fns_ != nullptr);
  DPC_CHECK(topology_ != nullptr);
}

Result<QueryResult> AdvancedQuerier::Query(const Tuple& output,
                                           const Vid* evid) {
  NodeId querier = output.Location();
  Accounting acct(topology_, &cost_, querier);

  std::vector<const ProvEntry*> prov_rows =
      recorder_->ProvAt(querier).FindByVid(output.Vid());
  if (prov_rows.empty()) {
    return Status::NotFound("no prov entry for " + output.ToString());
  }
  acct.TouchEntries(prov_rows.size());
  acct.FetchBytes(prov_rows.size() * prov_rows[0]->SerializedSize(true));

  auto rows_for_rid =
      [this](const NodeRid& at, Accounting& a,
             std::vector<std::pair<WalkElem, NodeRid>>& out) -> Status {
    if (recorder_->inter_class_sharing()) {
      const RuleExecNodeEntry* node =
          recorder_->RuleExecNodesAt(at.loc).FindByRid(at.rid);
      if (node == nullptr) return Status::OK();
      std::vector<const RuleExecLinkEntry*> links =
          recorder_->RuleExecLinksAt(at.loc).FindByRid(at.rid);
      for (const RuleExecLinkEntry* link : links) {
        a.TouchEntries(2);  // node row + link row
        a.FetchBytes(node->SerializedSize() + link->SerializedSize());
        WalkElem elem;
        elem.rule_id = node->rule_id;
        elem.loc = node->rloc;
        for (const Vid& v : node->vids) {
          const Tuple* st = recorder_->TuplesAt(node->rloc).Find(v);
          if (st == nullptr) {
            return Status::NotFound("unresolvable slow-tuple vid " +
                                    v.ToHex(4));
          }
          a.TouchEntries(1);
          a.FetchBytes(st->SerializedSize());
          elem.slow.push_back(*st);
        }
        out.emplace_back(std::move(elem), link->next);
      }
      return Status::OK();
    }
    std::vector<const RuleExecEntry*> execs =
        recorder_->RuleExecAt(at.loc).FindByRid(at.rid);
    for (const RuleExecEntry* exec : execs) {
      a.TouchEntries(1);
      a.FetchBytes(exec->SerializedSize(true));
      WalkElem elem;
      elem.rule_id = exec->rule_id;
      elem.loc = exec->rloc;
      for (const Vid& v : exec->vids) {
        const Tuple* st = recorder_->TuplesAt(exec->rloc).Find(v);
        if (st == nullptr) {
          return Status::NotFound("unresolvable slow-tuple vid " +
                                  v.ToHex(4));
        }
        a.TouchEntries(1);
        a.FetchBytes(st->SerializedSize());
        elem.slow.push_back(*st);
      }
      out.emplace_back(std::move(elem), exec->next);
    }
    return Status::OK();
  };

  QueryResult res;
  for (const ProvEntry* prov : prov_rows) {
    // §5.6: the EVID rides along with the query.
    if (evid != nullptr && prov->evid != *evid) continue;
    Vid target_evid = prov->evid;
    std::vector<WalkElem> chain;
    Status st = WalkNextChain(
        rows_for_rid, prov->rule, acct, chain, 0,
        [&](const std::vector<WalkElem>& full) -> Status {
          const WalkElem& leaf = full.back();
          // Retrieve the event tuple materialized at the leaf node using
          // the tagged EVID; absence means this branch belongs to another
          // equivalence class (Theorem 5's filter).
          const Tuple* event =
              recorder_->EventsAt(leaf.loc).Find(target_evid);
          if (event == nullptr) return Status::OK();
          acct.TouchEntries(1);
          acct.FetchBytes(event->SerializedSize());
          Result<ProvTree> tree = ReconstructTree(full, *event, output,
                                                  *program_, *fns_, acct);
          if (tree.ok()) {
            res.trees.push_back(std::move(tree).value());
          } else if (!tree.status().IsNotFound()) {
            return tree.status();
          }
          return Status::OK();
        });
    DPC_RETURN_NOT_OK(st);
  }
  acct.ReturnToQuerier();

  // Deduplicate identical derivations found through different branches.
  std::sort(res.trees.begin(), res.trees.end(),
            [](const ProvTree& a, const ProvTree& b) {
              ByteWriter wa, wb;
              a.Serialize(wa);
              b.Serialize(wb);
              return wa.bytes() < wb.bytes();
            });
  res.trees.erase(std::unique(res.trees.begin(), res.trees.end()),
                  res.trees.end());

  if (res.trees.empty()) {
    return Status::NotFound("no derivation found for " + output.ToString());
  }
  acct.FillResult(res);
  return res;
}

}  // namespace dpc
