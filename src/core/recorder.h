// ProvenanceRecorder: the strategy interface implemented by the paper's
// three provenance-maintenance schemes (ExSPAN §2.2, Basic §4, Advanced
// §5.3-5.5) plus the ReferenceRecorder that ships whole trees inline
// (ground truth for correctness tests and the "no compression at all"
// ablation).
//
// The runtime (src/runtime/system.*) invokes the hooks as a DELP executes;
// recorders maintain their per-node prov/ruleExec tables and decide what
// metadata rides along with each event message (whose serialized size is
// charged to the simulated network).
#ifndef DPC_CORE_RECORDER_H_
#define DPC_CORE_RECORDER_H_

#include <memory>
#include <string>
#include <vector>

#include "src/core/prov_tables.h"
#include "src/core/tree.h"
#include "src/db/tuple.h"
#include "src/ndlog/ast.h"
#include "src/util/result.h"
#include "src/util/serial.h"

namespace dpc {

// Metadata tagged onto an event tuple as it traverses the network.
// Each scheme serializes only the fields it uses (see SerializeMeta).
struct ProvMeta {
  // VID of the original injected event tuple.
  Vid evid{};
  // Advanced: hash of the event's equivalence-key values (§5.3 stage 1).
  Sha1Digest eqkey{};
  // Advanced: the existFlag. True = an equivalent tree already exists.
  bool exist_flag = false;
  // Whether provenance rows are recorded for this execution.
  bool maintain = true;
  // Chain reference: the most recent rule-execution provenance node
  // (ExSPAN: the rule that derived the carried tuple; Basic/Advanced: the
  // NLoc/NRID target for the next firing).
  NodeRid prev;
  // ReferenceRecorder: the provenance tree accumulated so far.
  std::shared_ptr<ProvTree> tree;
};

// Per-node storage occupied by a scheme, in serialized bytes.
struct StorageBreakdown {
  size_t prov = 0;
  size_t rule_exec = 0;     // ruleExec, or ruleExecNode + ruleExecLink
  size_t event_store = 0;   // materialized input events (delta information)
  size_t tuple_store = 0;   // other materialized tuples (ExSPAN)

  size_t Total() const {
    return prov + rule_exec + event_store + tuple_store;
  }
  StorageBreakdown& operator+=(const StorageBreakdown& o);
};

// Hooks receive shared-immutable TupleRefs: a recorder that materializes a
// tuple (TupleStore::Put) retains the runtime's allocation — with its
// memoized VID/size — instead of copying and re-hashing it.
class ProvenanceRecorder {
 public:
  virtual ~ProvenanceRecorder() = default;

  virtual std::string name() const = 0;

  // An event tuple is injected at `node`; returns the metadata to tag.
  virtual ProvMeta OnInject(NodeId node, const TupleRef& event) = 0;

  // `rule` fired at `node`, triggered by `event` (carrying `meta`), joining
  // the slow-changing tuples `slow` and deriving `head`. Returns the
  // metadata to tag onto `head`.
  virtual ProvMeta OnRuleFired(NodeId node, const Rule& rule,
                               const TupleRef& event, const ProvMeta& meta,
                               const std::vector<TupleRef>& slow,
                               const TupleRef& head) = 0;

  // A terminal output tuple materialized at `node`.
  virtual void OnOutput(NodeId node, const TupleRef& output,
                        const ProvMeta& meta) = 0;

  // An event tuple arrived at `node` over the network (before its rules
  // fire). Default no-op. Recorders that materialize shipped provenance
  // rows must do it here — at the arrival node, on the arrival shard —
  // never by writing another node's state from the sender's hook (the
  // sharded runtime runs hooks concurrently; see docs/concurrency.md).
  virtual void OnArrival(NodeId node, const TupleRef& tuple,
                         const ProvMeta& meta);

  // A slow-changing tuple was inserted at `node`. Returns true when the
  // scheme requires a sig broadcast (§5.5).
  virtual bool OnSlowInsert(NodeId node, const TupleRef& t);

  virtual void OnSlowDelete(NodeId node, const Tuple& t);

  // A §5.5 sig control message arrived at `node`.
  virtual void OnControlSignal(NodeId node);

  // Scheme-specific wire encoding of the metadata; its size is what the
  // scheme adds to every event message.
  virtual void SerializeMeta(const ProvMeta& meta, ByteWriter& w) const = 0;
  virtual Result<ProvMeta> DeserializeMeta(ByteReader& r) const = 0;

  size_t MetaWireSize(const ProvMeta& meta) const;

  virtual StorageBreakdown StorageAt(NodeId node) const = 0;

  // Sum of StorageAt over all nodes.
  StorageBreakdown TotalStorage(int num_nodes) const;

  // --- durability (src/core/wal.*, src/core/wal_recorder.*) -----------
  // A recorder that opts in can serialize one node's complete state — the
  // snapshot tables plus any scheme-private auxiliary state (the Advanced
  // scheme's htequi/hmap/pending and §5.5 epoch) — into a checkpoint blob
  // and restore it into a freshly constructed recorder. The encoding is
  // canonical (containers sorted), so two recorders holding the same
  // logical state produce byte-identical blobs.
  virtual bool SupportsNodeState() const { return false; }
  // Requires SupportsNodeState(); restoring overwrites the node's state.
  virtual void SerializeNodeState(NodeId node, ByteWriter& w) const;
  virtual Status RestoreNodeState(NodeId node, ByteReader& r);
  // The node's §5.5 epoch (0 for schemes without epochs); recorded in
  // checkpoint headers as the boundary marker.
  virtual uint64_t StateEpoch(NodeId /*node*/) const { return 0; }
};

}  // namespace dpc

#endif  // DPC_CORE_RECORDER_H_
