// GetEquiKeys (§5.2, Fig. 5): static identification of the input event
// attributes whose values determine the shape of the provenance tree
// (Theorem 1). Two events agreeing on the equivalence keys generate
// equivalent (~) provenance trees, so the runtime only needs to compare
// key values to detect tree equivalence.
#ifndef DPC_CORE_EQUIVALENCE_KEYS_H_
#define DPC_CORE_EQUIVALENCE_KEYS_H_

#include <string>
#include <vector>

#include "src/core/dependency_graph.h"
#include "src/db/tuple.h"
#include "src/ndlog/program.h"
#include "src/util/result.h"
#include "src/util/sha1.h"

namespace dpc {

class EquivalenceKeys {
 public:
  const std::string& event_relation() const { return event_relation_; }

  // Sorted attribute indices of the input event relation; always contains
  // index 0 (the location specifier).
  const std::vector<size_t>& indices() const { return indices_; }

  bool Contains(size_t index) const;

  // Checks that `event` is a tuple of the input event relation with enough
  // attributes to cover every key index. Recorder ingest paths call this
  // before hashing so a malformed event is rejected with a Status instead
  // of crashing the node.
  Status ValidateEvent(const Tuple& event) const;

  // SHA-1 over the key attribute values of `event` (which must be a tuple
  // of the input event relation). This is the htequi / hmap key of §5.3.
  // The caller is responsible for prior ValidateEvent; key indices beyond
  // the event's arity are skipped (never out-of-bounds reads).
  Sha1Digest HashOf(const Tuple& event) const;

  // ValidateEvent + HashOf in one step.
  Result<Sha1Digest> CheckedHashOf(const Tuple& event) const;

  // Definition 2: event equivalence w.r.t. the keys.
  bool Equivalent(const Tuple& a, const Tuple& b) const;

  // e.g. "(packet:0, packet:2)".
  std::string ToString() const;

 private:
  friend Result<EquivalenceKeys> ComputeEquivalenceKeys(
      const Program& program);
  friend Result<EquivalenceKeys> ComputeEquivalenceKeys(
      const Program& program, const DependencyGraph& graph);

  std::string event_relation_;
  std::vector<size_t> indices_;
};

// Runs GetEquiKeys over `program`'s dependency graph. An input event
// attribute is a key iff it is the location attribute (index 0), or it can
// reach an attribute of a slow-changing relation, or it can reach an
// attribute mentioned in a comparison constraint (the conservative
// strengthening described in DESIGN.md §2: constraint outcomes gate rule
// firing, hence tree shape).
Result<EquivalenceKeys> ComputeEquivalenceKeys(const Program& program);
Result<EquivalenceKeys> ComputeEquivalenceKeys(const Program& program,
                                               const DependencyGraph& graph);

// --- Equivalence-key explanations -------------------------------------

// Why an input-event attribute is (or is not) an equivalence key.
enum class KeyReason {
  kLocation,             // index 0: the location specifier always participates
  kReachesSlowChanging,  // reaches an attribute of a slow-changing relation
  kReachesConstraint,    // reaches an attribute mentioned in a constraint
  kUnreachable,          // no path to any key-forcing attribute: not a key
};

const char* KeyReasonName(KeyReason reason);

// The per-attribute soundness report of GetEquiKeys: the dependency-graph
// reachability chain witnessing why the attribute's value does (or cannot)
// influence provenance-tree shape.
struct KeyExplanation {
  AttrNode attr;    // the input event attribute (relation = input event)
  std::string var;  // variable name at that position in r1's event atom
  bool is_key = false;
  KeyReason reason = KeyReason::kUnreachable;
  // Shortest witness chain from `attr` to the key-forcing attribute,
  // inclusive. Empty for kLocation and kUnreachable.
  std::vector<AttrNode> chain;

  // e.g. "packet:2 (D): key, reaches-slow-changing via packet:2 -> route:1".
  std::string ToString() const;
};

// Explains every attribute of the input event relation. Derives key status
// independently of ComputeEquivalenceKeys (path search rather than
// reachable-set intersection); the two must agree — the analysis layer's
// soundness pass cross-checks them and reports any divergence as an
// internal error.
Result<std::vector<KeyExplanation>> ExplainEquivalenceKeys(
    const Program& program);
Result<std::vector<KeyExplanation>> ExplainEquivalenceKeys(
    const Program& program, const DependencyGraph& graph);

}  // namespace dpc

#endif  // DPC_CORE_EQUIVALENCE_KEYS_H_
