// GetEquiKeys (§5.2, Fig. 5): static identification of the input event
// attributes whose values determine the shape of the provenance tree
// (Theorem 1). Two events agreeing on the equivalence keys generate
// equivalent (~) provenance trees, so the runtime only needs to compare
// key values to detect tree equivalence.
#ifndef DPC_CORE_EQUIVALENCE_KEYS_H_
#define DPC_CORE_EQUIVALENCE_KEYS_H_

#include <string>
#include <vector>

#include "src/core/dependency_graph.h"
#include "src/db/tuple.h"
#include "src/ndlog/program.h"
#include "src/util/result.h"
#include "src/util/sha1.h"

namespace dpc {

class EquivalenceKeys {
 public:
  const std::string& event_relation() const { return event_relation_; }

  // Sorted attribute indices of the input event relation; always contains
  // index 0 (the location specifier).
  const std::vector<size_t>& indices() const { return indices_; }

  bool Contains(size_t index) const;

  // SHA-1 over the key attribute values of `event` (which must be a tuple
  // of the input event relation). This is the htequi / hmap key of §5.3.
  Sha1Digest HashOf(const Tuple& event) const;

  // Definition 2: event equivalence w.r.t. the keys.
  bool Equivalent(const Tuple& a, const Tuple& b) const;

  // e.g. "(packet:0, packet:2)".
  std::string ToString() const;

 private:
  friend Result<EquivalenceKeys> ComputeEquivalenceKeys(
      const Program& program);
  friend Result<EquivalenceKeys> ComputeEquivalenceKeys(
      const Program& program, const DependencyGraph& graph);

  std::string event_relation_;
  std::vector<size_t> indices_;
};

// Runs GetEquiKeys over `program`'s dependency graph. An input event
// attribute is a key iff it is the location attribute (index 0), or it can
// reach an attribute of a slow-changing relation, or it can reach an
// attribute mentioned in a comparison constraint (the conservative
// strengthening described in DESIGN.md §2: constraint outcomes gate rule
// firing, hence tree shape).
Result<EquivalenceKeys> ComputeEquivalenceKeys(const Program& program);
Result<EquivalenceKeys> ComputeEquivalenceKeys(const Program& program,
                                               const DependencyGraph& graph);

}  // namespace dpc

#endif  // DPC_CORE_EQUIVALENCE_KEYS_H_
