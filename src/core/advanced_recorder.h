// AdvancedRecorder: equivalence-based online compression (§5.3), optional
// inter-equivalence-class sharing (§5.4), and slow-changing-update handling
// (§5.5).
//
// Stage 1 (injection): hash the event's equivalence-key values; if seen
//   before in this node's htequi, set existFlag and skip maintenance.
// Stage 2 (execution): when maintaining, each firing appends a ruleExec row
//   whose RID hashes only the rule and its slow-changing inputs — so all
//   events of an equivalence class share the same rows.
// Stage 3 (output): associate the output tuple with the class's shared tree
//   through hmap, writing one prov row (Loc, VID, RLoc, RID, EVID).
//
// Out-of-order tolerance: if an existFlag=true execution reaches the output
// node before the class's first execution populated hmap, the prov row is
// parked in a pending list and flushed when the shared tree registers.
#ifndef DPC_CORE_ADVANCED_RECORDER_H_
#define DPC_CORE_ADVANCED_RECORDER_H_

#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "src/core/equivalence_keys.h"
#include "src/core/recorder.h"
#include "src/core/snapshot.h"
#include "src/ndlog/program.h"

namespace dpc {

struct AdvancedOptions {
  // §5.4: split ruleExec into ruleExecNode (concrete nodes, deduplicated
  // across equivalence classes) and ruleExecLink (per-tree edges).
  bool inter_class_sharing = false;
};

class AdvancedRecorder : public ProvenanceRecorder {
 public:
  AdvancedRecorder(const Program* program, EquivalenceKeys keys,
                   int num_nodes, AdvancedOptions options = {});

  std::string name() const override {
    return options_.inter_class_sharing ? "Advanced+InterClass" : "Advanced";
  }

  ProvMeta OnInject(NodeId node, const TupleRef& event) override;
  ProvMeta OnRuleFired(NodeId node, const Rule& rule, const TupleRef& event,
                       const ProvMeta& meta,
                       const std::vector<TupleRef>& slow,
                       const TupleRef& head) override;
  void OnOutput(NodeId node, const TupleRef& output,
                const ProvMeta& meta) override;
  bool OnSlowInsert(NodeId node, const TupleRef& t) override;
  void OnControlSignal(NodeId node) override;

  void SerializeMeta(const ProvMeta& meta, ByteWriter& w) const override;
  Result<ProvMeta> DeserializeMeta(ByteReader& r) const override;

  StorageBreakdown StorageAt(NodeId node) const override;

  const EquivalenceKeys& keys() const { return keys_; }

  // --- table access for the query engine ---
  const ProvTable& ProvAt(NodeId node) const { return nodes_[node].prov; }
  const RuleExecTable& RuleExecAt(NodeId node) const {
    return nodes_[node].rule_exec;
  }
  const RuleExecNodeTable& RuleExecNodesAt(NodeId node) const {
    return nodes_[node].exec_nodes;
  }
  const RuleExecLinkTable& RuleExecLinksAt(NodeId node) const {
    return nodes_[node].exec_links;
  }
  const TupleStore& TuplesAt(NodeId node) const { return nodes_[node].tuples; }
  const TupleStore& EventsAt(NodeId node) const { return nodes_[node].events; }
  bool inter_class_sharing() const { return options_.inter_class_sharing; }

  // Portable snapshot of this node's tables (checkpoint/restore).
  NodeSnapshot SnapshotAt(NodeId node) const;

  // Durability: snapshot tables plus the scheme-private auxiliary state
  // (htequi, hmap, pending, §5.5 epoch), all in sorted canonical order.
  bool SupportsNodeState() const override { return true; }
  void SerializeNodeState(NodeId node, ByteWriter& w) const override;
  Status RestoreNodeState(NodeId node, ByteReader& r) override;
  uint64_t StateEpoch(NodeId node) const override {
    return nodes_[node].epoch;
  }

  // Number of pending (unflushed) output associations; 0 once quiescent.
  size_t PendingOutputs() const;

  // The RID scheme of Table 3: sha1 over the rule id and the slow-changing
  // VIDs only — identical for every member of an equivalence class (and,
  // with §5.4, across classes at the same node). The per-node `epoch`,
  // bumped on every §5.5 sig reset, salts the hash so post-update shared
  // trees never collide with pre-update rows; without it a query could
  // return derivations that were never executed (Lemma 6's (RLoc, RID)
  // uniqueness would break across updates).
  static Rid MakeRid(const std::string& rule_id,
                     const std::vector<Vid>& slow_vids, uint64_t epoch);

  uint64_t EpochAt(NodeId node) const { return nodes_[node].epoch; }

 private:
  struct PendingOutput {
    Vid vid;
    Vid evid;
  };
  struct NodeState {
    NodeState() : prov(/*with_evid=*/true), rule_exec(/*with_next=*/true) {}
    ProvTable prov;
    RuleExecTable rule_exec;        // §5.3 representation
    RuleExecNodeTable exec_nodes;   // §5.4 representation
    RuleExecLinkTable exec_links;
    TupleStore tuples;  // slow-changing tuples referenced by VIDS
    TupleStore events;  // input events injected here (the per-tree delta)
    // Stage-1 cache of seen equivalence keys (htequi).
    std::unordered_set<Sha1Digest, Sha1DigestHash> htequi;
    // Output-side shared-tree references (hmap).
    std::unordered_map<Sha1Digest, NodeRid, Sha1DigestHash> hmap;
    std::unordered_map<Sha1Digest, std::vector<PendingOutput>, Sha1DigestHash>
        pending;
    uint64_t epoch = 0;
  };

  void InsertRuleExecRow(NodeState& state, NodeId node, const Rid& rid,
                         const std::string& rule_id,
                         const std::vector<Vid>& slow_vids,
                         const NodeRid& next);

  const Program* program_;
  EquivalenceKeys keys_;
  AdvancedOptions options_;
  std::vector<NodeState> nodes_;
};

}  // namespace dpc

#endif  // DPC_CORE_ADVANCED_RECORDER_H_
