#include "src/core/recorder.h"

#include "src/util/logging.h"

namespace dpc {

StorageBreakdown& StorageBreakdown::operator+=(const StorageBreakdown& o) {
  prov += o.prov;
  rule_exec += o.rule_exec;
  event_store += o.event_store;
  tuple_store += o.tuple_store;
  return *this;
}

bool ProvenanceRecorder::OnSlowInsert(NodeId, const TupleRef&) {
  return false;
}

void ProvenanceRecorder::OnSlowDelete(NodeId, const Tuple&) {}

void ProvenanceRecorder::OnControlSignal(NodeId) {}

void ProvenanceRecorder::OnArrival(NodeId, const TupleRef&, const ProvMeta&) {}

size_t ProvenanceRecorder::MetaWireSize(const ProvMeta& meta) const {
  ByteWriter w;
  SerializeMeta(meta, w);
  return w.size();
}

void ProvenanceRecorder::SerializeNodeState(NodeId, ByteWriter&) const {
  DPC_CHECK(false) << name() << " does not support node-state durability";
}

Status ProvenanceRecorder::RestoreNodeState(NodeId, ByteReader&) {
  return Status::NotImplemented(name() +
                                " does not support node-state durability");
}

StorageBreakdown ProvenanceRecorder::TotalStorage(int num_nodes) const {
  StorageBreakdown total;
  for (NodeId n = 0; n < num_nodes; ++n) total += StorageAt(n);
  return total;
}

}  // namespace dpc
