// BasicRecorder: the §4 storage optimization. Provenance rows for
// intermediate event tuples are not materialized; instead each ruleExec row
// carries (NLoc, NRID) pointing at the previous rule execution, and only
// output tuples of the relations of interest get prov rows. Intermediate
// tuples are re-derived at query time by bottom-up rule re-execution
// (§4 step 2).
//
// RIDs hash the rule id, firing location and *all* body tuple VIDs
// (including the triggering event), so every firing's row is unique and
// (RLoc, RID) is a primary key — the uniqueness property Lemma 6 relies on.
// The VIDS column, however, only stores what reconstruction needs: the
// slow-changing tuples, plus the input event VID on the first (leaf) rule.
#ifndef DPC_CORE_BASIC_RECORDER_H_
#define DPC_CORE_BASIC_RECORDER_H_

#include <string>
#include <vector>

#include "src/core/recorder.h"
#include "src/core/snapshot.h"
#include "src/ndlog/program.h"

namespace dpc {

class BasicRecorder : public ProvenanceRecorder {
 public:
  BasicRecorder(const Program* program, int num_nodes);

  std::string name() const override { return "Basic"; }

  ProvMeta OnInject(NodeId node, const TupleRef& event) override;
  ProvMeta OnRuleFired(NodeId node, const Rule& rule, const TupleRef& event,
                       const ProvMeta& meta,
                       const std::vector<TupleRef>& slow,
                       const TupleRef& head) override;
  void OnOutput(NodeId node, const TupleRef& output,
                const ProvMeta& meta) override;

  void SerializeMeta(const ProvMeta& meta, ByteWriter& w) const override;
  Result<ProvMeta> DeserializeMeta(ByteReader& r) const override;

  StorageBreakdown StorageAt(NodeId node) const override;

  // --- table access for the query engine ---
  const ProvTable& ProvAt(NodeId node) const { return nodes_[node].prov; }
  const RuleExecTable& RuleExecAt(NodeId node) const {
    return nodes_[node].rule_exec;
  }
  const TupleStore& TuplesAt(NodeId node) const { return nodes_[node].tuples; }
  const TupleStore& EventsAt(NodeId node) const { return nodes_[node].events; }

  // Portable snapshot of this node's tables (checkpoint/restore).
  NodeSnapshot SnapshotAt(NodeId node) const;

  // Durability: the node state is exactly the snapshot tables.
  bool SupportsNodeState() const override { return true; }
  void SerializeNodeState(NodeId node, ByteWriter& w) const override;
  Status RestoreNodeState(NodeId node, ByteReader& r) override;

  static Rid MakeRid(const std::string& rule_id, NodeId loc,
                     const Vid& event_vid, const std::vector<Vid>& slow_vids);

 private:
  struct NodeState {
    NodeState() : prov(/*with_evid=*/false), rule_exec(/*with_next=*/true) {}
    ProvTable prov;
    RuleExecTable rule_exec;
    TupleStore tuples;  // slow-changing tuples referenced by VIDS
    TupleStore events;  // input events injected here
  };

  const Program* program_;
  std::vector<NodeState> nodes_;
};

}  // namespace dpc

#endif  // DPC_CORE_BASIC_RECORDER_H_
