// The distributed provenance storage model (§2.2, §4, §5.3, §5.4): per-node
// `prov` and `ruleExec` relational tables, plus the §5.4 split into
// `ruleExecNode` / `ruleExecLink` used by inter-equivalence-class sharing.
//
// All identifiers are SHA-1 digests, as in ExSPAN:
//   VID  = sha1(canonical tuple encoding)
//   RID  = sha1(rule id [+ location] + body VIDs)   (scheme-dependent)
//   EVID = VID of the input event tuple of an execution (§5.3)
//
// Serialized sizes of these tables are exactly what the paper's storage
// figures measure.
#ifndef DPC_CORE_PROV_TABLES_H_
#define DPC_CORE_PROV_TABLES_H_

#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "src/db/tuple.h"
#include "src/util/serial.h"
#include "src/util/sha1.h"
#include "src/util/thread_annotations.h"

namespace dpc {

using Vid = Sha1Digest;
using Rid = Sha1Digest;

// A (location, RID) reference to a rule-execution provenance node; the
// (RLoc, RID) and (NLoc, NRID) column pairs of the paper's tables.
struct NodeRid {
  NodeId loc = kNullNode;
  Rid rid{};

  bool IsNull() const { return loc == kNullNode; }
  static NodeRid Null() { return NodeRid{}; }

  bool operator==(const NodeRid&) const = default;

  void Serialize(ByteWriter& w) const;
  static Result<NodeRid> Deserialize(ByteReader& r);

  std::string ToString() const;
};

// A row of the prov table. Column usage by scheme:
//   ExSPAN (Table 1):  (Loc, VID, RID, RLoc)           rule may be Null for
//                                                      base/input tuples
//   Basic  (Table 2):  (Loc, VID, RID, RLoc)           output tuples only
//   Advanced (Table 3): (Loc, VID, RLoc, RID, EVID)    output tuples only
struct ProvEntry {
  NodeId loc = kNullNode;
  Vid vid{};
  NodeRid rule;  // (RLoc, RID)
  Vid evid{};    // Advanced only

  bool operator==(const ProvEntry&) const = default;

  void Serialize(ByteWriter& w, bool with_evid) const;
  static Result<ProvEntry> Deserialize(ByteReader& r, bool with_evid);
  // Arithmetic (no buffer); equals the byte count Serialize appends.
  size_t SerializedSize(bool with_evid) const;
};

// A row of the ruleExec table. Column usage by scheme:
//   ExSPAN (Table 1):  (RLoc, RID, R, VIDS)                 no next columns
//   Basic  (Table 2):  (RLoc, RID, R, VIDS, NLoc, NRID)
//   Advanced (Table 3): same as Basic, with VIDS restricted to
//                       slow-changing tuples so RIDs are shared class-wide
struct RuleExecEntry {
  NodeId rloc = kNullNode;
  Rid rid{};
  std::string rule_id;
  std::vector<Vid> vids;
  NodeRid next;  // (NLoc, NRID)

  bool operator==(const RuleExecEntry&) const = default;

  void Serialize(ByteWriter& w, bool with_next) const;
  static Result<RuleExecEntry> Deserialize(ByteReader& r, bool with_next);
  size_t SerializedSize(bool with_next) const;
};

// §5.4 split: the concrete rule-execution node...
struct RuleExecNodeEntry {
  NodeId rloc = kNullNode;
  Rid rid{};
  std::string rule_id;
  std::vector<Vid> vids;

  bool operator==(const RuleExecNodeEntry&) const = default;

  void Serialize(ByteWriter& w) const;
  static Result<RuleExecNodeEntry> Deserialize(ByteReader& r);
  size_t SerializedSize() const;
};

// ...and the parent->child links, one row per tree edge.
struct RuleExecLinkEntry {
  NodeId rloc = kNullNode;
  Rid rid{};
  NodeRid next;

  bool operator==(const RuleExecLinkEntry&) const = default;

  void Serialize(ByteWriter& w) const;
  static Result<RuleExecLinkEntry> Deserialize(ByteReader& r);
  size_t SerializedSize() const;
};

// --- per-node tables -------------------------------------------------------

// prov table: content-deduplicated rows indexed by VID.
class ProvTable {
 public:
  explicit ProvTable(bool with_evid) : with_evid_(with_evid) {}

  // Inserts a row; duplicate rows (full content) are ignored.
  bool Insert(const ProvEntry& e);

  // All rows whose VID equals `vid`.
  std::vector<const ProvEntry*> FindByVid(const Vid& vid) const;

  size_t size() const { return rows_.size(); }
  // Incrementally maintained total serialized size in bytes.
  size_t SerializedBytes() const { return bytes_; }

  const std::vector<ProvEntry>& rows() const { return rows_; }

 private:
  bool with_evid_;
  std::vector<ProvEntry> rows_;
  std::unordered_multimap<Vid, size_t, Sha1DigestHash> by_vid_;
  std::unordered_set<Sha1Digest, Sha1DigestHash> content_keys_;
  size_t bytes_ = 0;
};

// ruleExec table: content-deduplicated rows indexed by RID. Several rows may
// share an RID (Advanced: one per distinct next pointer); queries branch
// over all of them and filter by EVID at the leaves (Theorem 5).
class RuleExecTable {
 public:
  explicit RuleExecTable(bool with_next) : with_next_(with_next) {}

  bool Insert(const RuleExecEntry& e);

  std::vector<const RuleExecEntry*> FindByRid(const Rid& rid) const;

  size_t size() const { return rows_.size(); }
  size_t SerializedBytes() const { return bytes_; }
  const std::vector<RuleExecEntry>& rows() const { return rows_; }

 private:
  bool with_next_;
  std::vector<RuleExecEntry> rows_;
  std::unordered_multimap<Rid, size_t, Sha1DigestHash> by_rid_;
  std::unordered_set<Sha1Digest, Sha1DigestHash> content_keys_;
  size_t bytes_ = 0;
};

// §5.4 ruleExecNode table: unique per (rloc, rid).
class RuleExecNodeTable {
 public:
  bool Insert(const RuleExecNodeEntry& e);
  const RuleExecNodeEntry* FindByRid(const Rid& rid) const;

  size_t size() const { return rows_.size(); }
  size_t SerializedBytes() const { return bytes_; }
  const std::vector<RuleExecNodeEntry>& rows() const { return rows_; }

 private:
  std::vector<RuleExecNodeEntry> rows_;
  std::unordered_map<Rid, size_t, Sha1DigestHash> by_rid_;
  size_t bytes_ = 0;
};

// §5.4 ruleExecLink table: unique per (rloc, rid, next).
class RuleExecLinkTable {
 public:
  bool Insert(const RuleExecLinkEntry& e);
  std::vector<const RuleExecLinkEntry*> FindByRid(const Rid& rid) const;

  size_t size() const { return rows_.size(); }
  size_t SerializedBytes() const { return bytes_; }
  const std::vector<RuleExecLinkEntry>& rows() const { return rows_; }

 private:
  std::vector<RuleExecLinkEntry> rows_;
  std::unordered_multimap<Rid, size_t, Sha1DigestHash> by_rid_;
  std::unordered_set<Sha1Digest, Sha1DigestHash> content_keys_;
  size_t bytes_ = 0;
};

// Materialized tuple contents keyed by VID: input events at their injection
// node (all schemes; the irreducible per-event "delta" of §5.1) and, for
// ExSPAN, every intermediate/output/base tuple its hash-only rows refer to.
//
// Thread-safe: the map is mutex-guarded because a tuple injected on one
// shard can be referenced (and thus stored/looked-up) from another. Find
// returns a pointer to the shared-immutable tuple, which stays valid under
// concurrent Puts — the map owns TupleRefs, so rehashing moves the refs,
// never the tuples.
class TupleStore {
 public:
  TupleStore() = default;

  // Movable for single-owner handoff (snapshot restore, container
  // growth). Moving locks the source; the moved-from store is empty and
  // must not be raced by other threads during the move.
  TupleStore(TupleStore&& other) noexcept {
    MutexLock lock(other.mu_);
    tuples_ = std::move(other.tuples_);
    bytes_ = other.bytes_;
    other.tuples_.clear();
    other.bytes_ = 0;
  }
  TupleStore& operator=(TupleStore&& other) noexcept {
    if (this != &other) {
      std::unordered_map<Vid, TupleRef, Sha1DigestHash> taken;
      size_t taken_bytes = 0;
      {
        MutexLock lock(other.mu_);
        taken = std::move(other.tuples_);
        taken_bytes = other.bytes_;
        other.tuples_.clear();
        other.bytes_ = 0;
      }
      MutexLock lock(mu_);
      tuples_ = std::move(taken);
      bytes_ = taken_bytes;
    }
    return *this;
  }

  // Returns false if the VID was already present. The TupleRef overload
  // shares the caller's allocation; the Tuple overload allocates only when
  // the VID is actually new.
  bool Put(const Tuple& t) DPC_EXCLUDES(mu_);
  bool Put(TupleRef t) DPC_EXCLUDES(mu_);

  const Tuple* Find(const Vid& vid) const DPC_EXCLUDES(mu_);
  bool Contains(const Vid& vid) const { return Find(vid) != nullptr; }

  // Applies `fn` to every stored tuple (unspecified order), holding the
  // store lock throughout: `fn` must not call back into this store.
  template <typename Fn>
  void ForEach(Fn&& fn) const DPC_EXCLUDES(mu_) {
    MutexLock lock(mu_);
    for (const auto& [_, tuple] : tuples_) fn(*tuple);
  }

  size_t size() const DPC_EXCLUDES(mu_) {
    MutexLock lock(mu_);
    return tuples_.size();
  }
  size_t SerializedBytes() const DPC_EXCLUDES(mu_) {
    MutexLock lock(mu_);
    return bytes_;
  }

 private:
  mutable Mutex mu_;
  std::unordered_map<Vid, TupleRef, Sha1DigestHash> tuples_
      DPC_GUARDED_BY(mu_);
  size_t bytes_ DPC_GUARDED_BY(mu_) = 0;
};

}  // namespace dpc

#endif  // DPC_CORE_PROV_TABLES_H_
