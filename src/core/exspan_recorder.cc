#include "src/core/exspan_recorder.h"

#include "src/obs/metrics.h"
#include "src/util/logging.h"

namespace dpc {

ExspanRecorder::ExspanRecorder(int num_nodes) { nodes_.resize(num_nodes); }

Rid ExspanRecorder::MakeRid(const std::string& rule_id, NodeId loc,
                            const std::vector<Vid>& vids) {
  ByteWriter w;
  w.PutString("exspan-rid");
  w.PutString(rule_id);
  w.PutU32(static_cast<uint32_t>(loc));
  for (const Vid& v : vids) w.PutDigest(v);
  return Sha1::Hash(w.bytes().data(), w.size());
}

ProvMeta ExspanRecorder::OnInject(NodeId node, const TupleRef& event) {
  ProvMeta meta;
  meta.evid = event->Vid();
  NodeState& state = nodes_[node];
  state.events.Put(event);
  // Input events are base tuples of the derivation: NULL rule reference.
  state.prov.Insert(ProvEntry{node, meta.evid, NodeRid::Null(), Vid{}});
  return meta;
}

bool ExspanRecorder::OnSlowInsert(NodeId node, const TupleRef& t) {
  NodeState& state = nodes_[node];
  state.tuples.Put(t);
  state.prov.Insert(ProvEntry{node, t->Vid(), NodeRid::Null(), Vid{}});
  return false;  // no sig broadcast in ExSPAN
}

ProvMeta ExspanRecorder::OnRuleFired(NodeId node, const Rule& rule,
                                     const TupleRef& event,
                                     const ProvMeta& meta,
                                     const std::vector<TupleRef>& slow,
                                     const TupleRef& head) {
  NodeState& state = nodes_[node];

  std::vector<Vid> vids;
  vids.reserve(slow.size() + 1);
  vids.push_back(event->Vid());
  for (const TupleRef& t : slow) vids.push_back(t->Vid());

  Rid rid = MakeRid(rule.id, node, vids);
  state.rule_exec.Insert(RuleExecEntry{node, rid, rule.id, vids,
                                       NodeRid::Null()});
  GlobalMetrics()
      .GetCounter("recorder.exspan.rule_exec_rows")
      .IncrementAt(node);
  // The event that triggered this rule is materialized here (it is either
  // the locally injected input or an intermediate tuple shipped to us).
  state.tuples.Put(event);

  // The head's prov row lives at the head's location; the runtime ships
  // (RLoc, RID) with the head tuple in the metadata, and the row
  // materializes when the tuple arrives (OnArrival / OnOutput) — at the
  // head's node, on the head's shard. Writing nodes_[head_loc] from here
  // would be a cross-shard race under the parallel runtime.
  ProvMeta out = meta;
  out.prev = NodeRid{node, rid};
  return out;
}

void ExspanRecorder::OnArrival(NodeId node, const TupleRef& tuple,
                               const ProvMeta& meta) {
  NodeState& state = nodes_[node];
  state.prov.Insert(ProvEntry{node, tuple->Vid(), meta.prev, Vid{}});
  state.tuples.Put(tuple);
}

void ExspanRecorder::OnOutput(NodeId node, const TupleRef& output,
                              const ProvMeta& meta) {
  // Terminal heads reach here both via local derivation and via the
  // network (HandleMessage routes non-event arrivals to EmitOutput), so
  // the shipped (RLoc, RID) row is written exactly once.
  NodeState& state = nodes_[node];
  state.prov.Insert(ProvEntry{node, output->Vid(), meta.prev, Vid{}});
  state.tuples.Put(output);
}

void ExspanRecorder::SerializeMeta(const ProvMeta& meta,
                                   ByteWriter& w) const {
  // ExSPAN ships the deriving rule execution's (RLoc, RID) with each tuple.
  meta.prev.Serialize(w);
}

Result<ProvMeta> ExspanRecorder::DeserializeMeta(ByteReader& r) const {
  ProvMeta meta;
  DPC_ASSIGN_OR_RETURN(meta.prev, NodeRid::Deserialize(r));
  return meta;
}

NodeSnapshot ExspanRecorder::SnapshotAt(NodeId node) const {
  const NodeState& state = nodes_[node];
  return SnapshotTables(node, state.prov, /*prov_with_evid=*/false,
                        state.rule_exec, /*rule_exec_with_next=*/false,
                        state.events, state.tuples);
}

void ExspanRecorder::SerializeNodeState(NodeId node, ByteWriter& w) const {
  SnapshotAt(node).Serialize(w);
}

Status ExspanRecorder::RestoreNodeState(NodeId node, ByteReader& r) {
  DPC_ASSIGN_OR_RETURN(NodeSnapshot snap, NodeSnapshot::Deserialize(r));
  if (snap.node != node) {
    return Status::InvalidArgument("snapshot is for node " +
                                   std::to_string(snap.node));
  }
  if (snap.prov_with_evid || snap.rule_exec_with_next) {
    return Status::InvalidArgument("snapshot schema is not ExSPAN's");
  }
  DPC_ASSIGN_OR_RETURN(RestoredTables tables, RestoreTables(snap));
  NodeState& state = nodes_[node];
  state.prov = std::move(tables.prov);
  state.rule_exec = std::move(tables.rule_exec);
  state.events = std::move(tables.events);
  state.tuples = std::move(tables.tuples);
  return Status::OK();
}

StorageBreakdown ExspanRecorder::StorageAt(NodeId node) const {
  const NodeState& state = nodes_[node];
  StorageBreakdown s;
  s.prov = state.prov.SerializedBytes();
  s.rule_exec = state.rule_exec.SerializedBytes();
  s.event_store = state.events.SerializedBytes();
  s.tuple_store = state.tuples.SerializedBytes();
  return s;
}

}  // namespace dpc
