// Provenance trees (Appendix A).
//
// A DELP provenance tree is linear: it is the chain of rule executions from
// the input event to the output tuple,
//
//   tr ::= <rID, P, ev,  B_1::...::B_n>      (base: first rule)
//        | <rID, P, tr', B_1::...::B_n>      (inductive step)
//
// We represent it as the input event plus the ordered list of steps; each
// step carries the rule id, the derived head tuple, and the slow-changing
// tuples that joined.
#ifndef DPC_CORE_TREE_H_
#define DPC_CORE_TREE_H_

#include <string>
#include <vector>

#include "src/db/tuple.h"
#include "src/util/result.h"
#include "src/util/serial.h"

namespace dpc {

struct ProvStep {
  std::string rule_id;
  Tuple head;
  std::vector<Tuple> slow_tuples;  // in body-atom order

  bool operator==(const ProvStep&) const = default;
};

class ProvTree {
 public:
  ProvTree() = default;
  ProvTree(Tuple event, std::vector<ProvStep> steps)
      : event_(std::move(event)), steps_(std::move(steps)) {}

  const Tuple& event() const { return event_; }
  const std::vector<ProvStep>& steps() const { return steps_; }
  bool empty() const { return steps_.empty(); }
  size_t depth() const { return steps_.size(); }

  // The root of the tree: the tuple whose provenance this is.
  const Tuple& Output() const;

  void set_event(Tuple ev) { event_ = std::move(ev); }
  void AppendStep(ProvStep step) { steps_.push_back(std::move(step)); }

  bool operator==(const ProvTree&) const = default;

  // The ~ equivalence of §5.1 / Appendix A: identical rule sequences and
  // identical slow-changing tuples at every step; the event and the
  // intermediate/output tuples may differ.
  bool EquivalentTo(const ProvTree& other) const;

  // Total equality is operator==; this checks only output + event identity,
  // useful in tests.
  bool SameDerivation(const ProvTree& other) const {
    return *this == other;
  }

  void Serialize(ByteWriter& w) const;
  static Result<ProvTree> Deserialize(ByteReader& r);
  size_t SerializedSize() const;

  // Multi-line rendering in the style of Fig. 3: the chain of rule nodes
  // (ovals) and tuple nodes (squares) from the output down to the event.
  std::string ToString() const;

  // Graphviz DOT rendering: oval rule nodes and boxed tuple nodes, exactly
  // as the paper draws provenance trees (Fig. 3). `graph_name` must be a
  // valid DOT identifier.
  std::string ToDot(const std::string& graph_name = "provenance") const;

 private:
  Tuple event_;
  std::vector<ProvStep> steps_;
};

}  // namespace dpc

#endif  // DPC_CORE_TREE_H_
