// Write-ahead log and checkpoint codec for recorder durability.
//
// The paper's recorders are in-memory strategy objects; a deployment that
// must survive a node crash needs the per-node prov/ruleExec state to be
// reconstructible from disk. This module provides the two on-disk
// artifacts (see docs/persistence.md for the full design):
//
//   * a per-node WAL of logical recorder mutations — one WalRecord per
//     hook invocation (inject, rule-fired, output, arrival, slow-changing
//     insert/delete, §5.5 control signal), framed with a length prefix and
//     an FNV-1a checksum so torn tails and bit flips are detected, never
//     trusted;
//   * a per-node checkpoint file: the recorder's full node state
//     (serialized via ProvenanceRecorder::SerializeNodeState, which reuses
//     the src/core/snapshot.* table encoding) plus the WAL sequence
//     watermark it covers and the node's §5.5 epoch at the boundary.
//
// Recovery = restore the latest checkpoint, then replay the WAL tail
// (records with seq > watermark) through the real recorder hooks — the
// same code path that built the state originally, so the recovered tables
// are byte-identical to an uninterrupted run's.
//
// Every decode path returns Status/Result: a truncated, bit-flipped, or
// hostile-length file is reported (and counted by the caller's metrics),
// never an abort. Replay stops at the first corrupt frame — everything
// before it is intact by checksum.
#ifndef DPC_CORE_WAL_H_
#define DPC_CORE_WAL_H_

#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "src/db/tuple.h"
#include "src/util/result.h"
#include "src/util/serial.h"

namespace dpc {

// One logical recorder mutation. Kinds mirror the ProvenanceRecorder
// hooks; fields beyond (seq, kind, node) are populated per kind.
enum class WalRecordKind : uint8_t {
  kInject = 1,         // tuple = injected event
  kRuleFired = 2,      // rule_id, tuple = trigger event, meta, slow, head
  kOutput = 3,         // tuple = output, meta
  kArrival = 4,        // tuple = arrived event, meta
  kSlowInsert = 5,     // tuple = slow-changing tuple
  kSlowDelete = 6,     // tuple = slow-changing tuple
  kControlSignal = 7,  // (node only)
};

struct WalRecord {
  // Per-node sequence number, monotone from 1; checkpoints record the
  // highest seq they cover so replay can skip the prefix.
  uint64_t seq = 0;
  WalRecordKind kind = WalRecordKind::kInject;
  NodeId node = 0;
  std::string rule_id;        // kRuleFired: resolved against the Program
  Tuple tuple;                // primary tuple (see kind comments)
  Tuple head;                 // kRuleFired: the derived head tuple
  std::vector<Tuple> slow;    // kRuleFired: joined slow-changing tuples
  // Scheme-encoded ProvMeta (ProvenanceRecorder::SerializeMeta), opaque
  // to the WAL: replay decodes it with the owning recorder.
  std::vector<uint8_t> meta;

  void Serialize(ByteWriter& w) const;
  static Result<WalRecord> Deserialize(ByteReader& r);
};

// Appends checksummed frames to one node's WAL file. Frame layout:
//   [u32 payload length][u64 FNV-1a of payload][payload]
// By default each append is flushed to the OS, so the log survives a
// kill -9 (an fsync per record — surviving power loss — is available via
// `sync`). Group-commit mode (`flush_each` off) buffers appends and
// flushes only on an explicit Flush()/Reset()/close: much cheaper, but a
// crash loses the buffered tail and recovery yields a consistent prefix.
// Single-writer: the owning node's hooks run on one shard worker.
class WalWriter {
 public:
  WalWriter() = default;
  ~WalWriter();
  WalWriter(WalWriter&&) noexcept;
  WalWriter& operator=(WalWriter&&) noexcept;
  WalWriter(const WalWriter&) = delete;
  WalWriter& operator=(const WalWriter&) = delete;

  // Opens `path` for appending (created if missing).
  static Result<WalWriter> Open(const std::string& path, bool sync = false,
                                bool flush_each = true);

  Status Append(const WalRecord& record);
  // Pushes buffered appends to the OS (page cache; plus fsync with `sync`).
  Status Flush();
  // Truncates the log to empty (after a checkpoint made it redundant).
  Status Reset();

  uint64_t bytes_written() const { return bytes_written_; }
  bool is_open() const { return file_ != nullptr; }

 private:
  std::FILE* file_ = nullptr;
  std::string path_;
  bool sync_ = false;
  bool flush_each_ = true;
  uint64_t bytes_written_ = 0;
  // Append scratch space, reused frame to frame (single-writer).
  ByteWriter scratch_;
  ByteWriter header_;
};

// The decoded prefix of a WAL file: every record up to the first corrupt
// or torn frame (if any). A missing file reads as an empty, intact log.
struct WalReadResult {
  std::vector<WalRecord> records;
  // 1 when decoding stopped at a bad frame (short header, hostile length,
  // checksum mismatch, or payload decode failure); 0 for a clean log.
  uint64_t corrupt_frames = 0;
  uint64_t bytes_scanned = 0;
};

// Never fails on corruption (that is reported in the result); only an
// unreadable file yields an error Status.
Result<WalReadResult> ReadWal(const std::string& path);

// Truncates a WAL file to its intact prefix (WalReadResult::bytes_scanned)
// so a writer reopened in append mode lands at a decodable position. A
// torn tail left by a crash would otherwise sit between the intact prefix
// and everything appended after restart, making the new records
// unreachable to ReadWal. A missing file is OK (nothing to truncate).
Status TruncateWal(const std::string& path, uint64_t bytes);

// A node's checkpoint: header + one SerializeNodeState blob, checksummed
// like a WAL frame and written atomically (tmp + rename).
struct CheckpointData {
  NodeId node = 0;
  // Highest WAL seq the state covers; replay skips records <= watermark.
  uint64_t watermark = 0;
  // The node's §5.5 epoch at the checkpoint boundary (0 for schemes
  // without epochs): checkpoints are cut at global barriers, so the epoch
  // is always a consistent boundary value, never mid-update.
  uint64_t epoch = 0;
  std::vector<uint8_t> state;  // ProvenanceRecorder::SerializeNodeState
};

// With `sync` the tmp file is fsynced before the rename and the parent
// directory after it, so the new checkpoint is durable against power loss
// before the caller may truncate the WAL it supersedes. Without `sync`
// the write is still atomic against process crashes (tmp + rename), just
// not ordered against power loss.
Status WriteCheckpoint(const std::string& path, const CheckpointData& data,
                       bool sync = false);
// ParseError on any malformed content (bad magic, hostile length,
// checksum mismatch); NotFound when the file does not exist.
Result<CheckpointData> ReadCheckpoint(const std::string& path);

// Canonical file names under a WAL directory.
std::string WalPath(const std::string& dir, NodeId node);
std::string CheckpointPath(const std::string& dir, NodeId node);

}  // namespace dpc

#endif  // DPC_CORE_WAL_H_
