// ExSPANRecorder: the uncompressed baseline (§2.2, Table 1). Every rule
// firing produces a ruleExec row at the firing node; every tuple — input
// event, intermediate event, output, and base — gets a prov row at its
// location (NULL rule reference for base/input tuples). Tuple contents its
// hash-only rows refer to are materialized per node so queries can resolve
// VIDs.
#ifndef DPC_CORE_EXSPAN_RECORDER_H_
#define DPC_CORE_EXSPAN_RECORDER_H_

#include <string>
#include <vector>

#include "src/core/recorder.h"
#include "src/core/snapshot.h"

namespace dpc {

class ExspanRecorder : public ProvenanceRecorder {
 public:
  explicit ExspanRecorder(int num_nodes);

  std::string name() const override { return "ExSPAN"; }

  ProvMeta OnInject(NodeId node, const TupleRef& event) override;
  ProvMeta OnRuleFired(NodeId node, const Rule& rule, const TupleRef& event,
                       const ProvMeta& meta,
                       const std::vector<TupleRef>& slow,
                       const TupleRef& head) override;
  void OnOutput(NodeId node, const TupleRef& output,
                const ProvMeta& meta) override;
  void OnArrival(NodeId node, const TupleRef& tuple,
                 const ProvMeta& meta) override;
  bool OnSlowInsert(NodeId node, const TupleRef& t) override;

  void SerializeMeta(const ProvMeta& meta, ByteWriter& w) const override;
  Result<ProvMeta> DeserializeMeta(ByteReader& r) const override;

  StorageBreakdown StorageAt(NodeId node) const override;

  // --- table access for the query engine ---
  const ProvTable& ProvAt(NodeId node) const { return nodes_[node].prov; }
  const RuleExecTable& RuleExecAt(NodeId node) const {
    return nodes_[node].rule_exec;
  }
  const TupleStore& TuplesAt(NodeId node) const {
    return nodes_[node].tuples;
  }
  const TupleStore& EventsAt(NodeId node) const {
    return nodes_[node].events;
  }

  // Portable snapshot of this node's tables (checkpoint/restore).
  NodeSnapshot SnapshotAt(NodeId node) const;

  // Durability: the node state is exactly the snapshot tables.
  bool SupportsNodeState() const override { return true; }
  void SerializeNodeState(NodeId node, ByteWriter& w) const override;
  Status RestoreNodeState(NodeId node, ByteReader& r) override;

  // The RID scheme of Table 1: sha1 over rule id, firing location, and the
  // VIDs of every body tuple (event first, then conditions in body order).
  static Rid MakeRid(const std::string& rule_id, NodeId loc,
                     const std::vector<Vid>& vids);

 private:
  struct NodeState {
    NodeState()
        : prov(/*with_evid=*/false), rule_exec(/*with_next=*/false) {}
    ProvTable prov;
    RuleExecTable rule_exec;
    TupleStore tuples;  // materialized base/intermediate/output tuples
    TupleStore events;  // materialized input events
  };
  std::vector<NodeState> nodes_;
};

}  // namespace dpc

#endif  // DPC_CORE_EXSPAN_RECORDER_H_
