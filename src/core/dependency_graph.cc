#include "src/core/dependency_graph.h"

#include <algorithm>
#include <deque>
#include <unordered_map>

namespace dpc {

namespace {

// Positions of every variable within a rule, across event atom, condition
// atoms and head atom.
struct VarPositions {
  std::vector<AttrNode> event;      // positions in the event atom
  std::vector<AttrNode> condition;  // positions in condition (slow) atoms
  std::vector<AttrNode> head;       // positions in the head atom
  std::vector<AttrNode> All() const {
    std::vector<AttrNode> all = event;
    all.insert(all.end(), condition.begin(), condition.end());
    all.insert(all.end(), head.begin(), head.end());
    return all;
  }
};

std::unordered_map<std::string, VarPositions> CollectVarPositions(
    const Rule& rule) {
  std::unordered_map<std::string, VarPositions> pos;
  const Atom& ev = rule.EventAtom();
  for (size_t i = 0; i < ev.args.size(); ++i) {
    if (ev.args[i].is_var()) {
      pos[ev.args[i].var].event.push_back(AttrNode{ev.relation, i});
    }
  }
  for (const Atom* cond : rule.ConditionAtoms()) {
    for (size_t i = 0; i < cond->args.size(); ++i) {
      if (cond->args[i].is_var()) {
        pos[cond->args[i].var].condition.push_back(
            AttrNode{cond->relation, i});
      }
    }
  }
  for (size_t i = 0; i < rule.head.args.size(); ++i) {
    if (rule.head.args[i].is_var()) {
      pos[rule.head.args[i].var].head.push_back(
          AttrNode{rule.head.relation, i});
    }
  }
  return pos;
}

}  // namespace

DependencyGraph DependencyGraph::Build(const Program& program) {
  DependencyGraph g;

  // Ensure every attribute of every relation mentioned in the program has a
  // vertex, even if isolated.
  for (const Rule& rule : program.rules()) {
    for (const Atom& atom : rule.atoms) {
      for (size_t i = 0; i < atom.args.size(); ++i) {
        g.AddNode(AttrNode{atom.relation, i});
      }
    }
    for (size_t i = 0; i < rule.head.args.size(); ++i) {
      g.AddNode(AttrNode{rule.head.relation, i});
    }
  }

  for (const Rule& rule : program.rules()) {
    auto positions = CollectVarPositions(rule);

    // Conditions (1) and (2): connect same-variable attribute positions.
    // We take the symmetric closure over all positions of each variable
    // (a conservative superset of the paper's event-centric edges; see
    // DESIGN.md §2). This lets reachability compose through joins.
    for (const auto& [var, vp] : positions) {
      std::vector<AttrNode> all = vp.All();
      for (size_t i = 0; i < all.size(); ++i) {
        for (size_t j = i + 1; j < all.size(); ++j) {
          g.AddEdge(all[i], all[j]);
        }
      }
    }

    // Condition (3): attributes co-occurring in an arithmetic or UDF
    // constraint are pairwise connected.
    for (const Constraint& c : rule.constraints) {
      std::vector<std::string> vars;
      c.expr->CollectVars(vars);
      std::vector<AttrNode> nodes;
      for (const auto& v : vars) {
        auto it = positions.find(v);
        if (it == positions.end()) continue;
        for (const auto& n : it->second.All()) nodes.push_back(n);
      }
      for (size_t i = 0; i < nodes.size(); ++i) {
        for (size_t j = i + 1; j < nodes.size(); ++j) {
          g.AddEdge(nodes[i], nodes[j]);
        }
      }
    }

    // Condition (4): assignment rhs variables connect to the attributes
    // that receive the assigned variable.
    for (const Assignment& asn : rule.assignments) {
      auto target_it = positions.find(asn.var);
      if (target_it == positions.end()) continue;
      std::vector<std::string> vars;
      asn.expr->CollectVars(vars);
      for (const auto& v : vars) {
        auto src_it = positions.find(v);
        if (src_it == positions.end()) continue;
        for (const auto& src : src_it->second.All()) {
          for (const auto& dst : target_it->second.All()) {
            g.AddEdge(src, dst);
          }
        }
      }
    }
  }
  return g;
}

void DependencyGraph::AddNode(const AttrNode& n) { edges_[n]; }

void DependencyGraph::AddEdge(const AttrNode& a, const AttrNode& b) {
  if (a == b) return;
  edges_[a].insert(b);
  edges_[b].insert(a);
}

bool DependencyGraph::HasEdge(const AttrNode& a, const AttrNode& b) const {
  auto it = edges_.find(a);
  return it != edges_.end() && it->second.count(b) > 0;
}

const std::set<AttrNode>& DependencyGraph::NeighborsOf(
    const AttrNode& n) const {
  static const std::set<AttrNode> kEmpty;
  auto it = edges_.find(n);
  return it == edges_.end() ? kEmpty : it->second;
}

bool DependencyGraph::Reachable(const AttrNode& from, const AttrNode& to) const {
  return ReachableSet(from).count(to) > 0;
}

std::set<AttrNode> DependencyGraph::ReachableSet(const AttrNode& from) const {
  std::set<AttrNode> seen{from};
  std::deque<AttrNode> frontier{from};
  while (!frontier.empty()) {
    AttrNode u = frontier.front();
    frontier.pop_front();
    for (const AttrNode& v : NeighborsOf(u)) {
      if (seen.insert(v).second) frontier.push_back(v);
    }
  }
  return seen;
}

std::vector<AttrNode> DependencyGraph::ShortestPathToAny(
    const AttrNode& from, const std::set<AttrNode>& targets) const {
  if (targets.count(from) > 0) return {from};
  std::map<AttrNode, AttrNode> parent;
  parent.emplace(from, from);
  std::deque<AttrNode> frontier{from};
  while (!frontier.empty()) {
    AttrNode u = frontier.front();
    frontier.pop_front();
    for (const AttrNode& v : NeighborsOf(u)) {
      if (!parent.emplace(v, u).second) continue;
      if (targets.count(v) > 0) {
        std::vector<AttrNode> path{v};
        for (AttrNode at = u; !(at == from); at = parent.at(at)) {
          path.push_back(at);
        }
        path.push_back(from);
        std::reverse(path.begin(), path.end());
        return path;
      }
      frontier.push_back(v);
    }
  }
  return {};
}

bool DependencyGraph::TouchesSlowChanging(const AttrNode& n,
                                          const Program& program) const {
  if (program.IsSlowChanging(n.relation)) return true;
  for (const AttrNode& nb : NeighborsOf(n)) {
    if (program.IsSlowChanging(nb.relation)) return true;
  }
  return false;
}

std::vector<AttrNode> DependencyGraph::Nodes() const {
  std::vector<AttrNode> out;
  out.reserve(edges_.size());
  for (const auto& [n, _] : edges_) out.push_back(n);
  return out;
}

size_t DependencyGraph::NumEdges() const {
  size_t n = 0;
  for (const auto& [_, nbrs] : edges_) n += nbrs.size();
  return n / 2;
}

std::string DependencyGraph::ToString() const {
  std::string out;
  for (const auto& [n, nbrs] : edges_) {
    out += n.ToString();
    out += " ->";
    for (const auto& nb : nbrs) {
      out += " ";
      out += nb.ToString();
    }
    out += "\n";
  }
  return out;
}

}  // namespace dpc
