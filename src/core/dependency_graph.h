// Attribute-level dependency graph (§5.2, Appendix B/C).
//
// Nodes are (relation, attribute-index) pairs. Edges connect attributes
// whose valuations are related by a rule:
//   (1) an event attribute and a same-variable attribute of a slow-changing
//       condition atom (a join with network state);
//   (2) an event attribute and a same-variable head attribute (value flow);
//   (3) attributes appearing together in the same arithmetic/UDF atom;
//   (4) right-hand-side variables of an assignment and the head attribute
//       receiving the assigned variable.
//
// Because graph nodes are keyed by (relation, index), value flow composes
// across consecutive DELP rules automatically: the head attribute of r_i is
// the event attribute of r_{i+1}.
#ifndef DPC_CORE_DEPENDENCY_GRAPH_H_
#define DPC_CORE_DEPENDENCY_GRAPH_H_

#include <cstddef>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "src/ndlog/program.h"

namespace dpc {

// A vertex: the i-th attribute of a relation, printed "rel:i".
struct AttrNode {
  std::string relation;
  size_t index = 0;

  bool operator==(const AttrNode&) const = default;
  auto operator<=>(const AttrNode&) const = default;

  std::string ToString() const {
    return relation + ":" + std::to_string(index);
  }
};

class DependencyGraph {
 public:
  // Builds the graph for `program` per the four edge conditions above.
  static DependencyGraph Build(const Program& program);

  bool HasNode(const AttrNode& n) const { return edges_.count(n) > 0; }
  bool HasEdge(const AttrNode& a, const AttrNode& b) const;

  const std::set<AttrNode>& NeighborsOf(const AttrNode& n) const;

  // True iff a path exists from `from` to `to` (BFS; reflexive).
  bool Reachable(const AttrNode& from, const AttrNode& to) const;

  // All nodes reachable from `from`, including `from` itself.
  std::set<AttrNode> ReachableSet(const AttrNode& from) const;

  // A shortest path (BFS) from `from` to the nearest member of `targets`,
  // inclusive of both endpoints; [from] when `from` itself is a target,
  // empty when no target is reachable. Used by the equivalence-key
  // explanation API to produce the reachability chain witnessing why an
  // attribute is a key.
  std::vector<AttrNode> ShortestPathToAny(
      const AttrNode& from, const std::set<AttrNode>& targets) const;

  // joinSAttr(p:n) in Appendix B: the node has an edge to (or is itself) an
  // attribute of a slow-changing relation of `program`.
  bool TouchesSlowChanging(const AttrNode& n, const Program& program) const;

  std::vector<AttrNode> Nodes() const;
  size_t NumEdges() const;

  std::string ToString() const;

 private:
  void AddNode(const AttrNode& n);
  void AddEdge(const AttrNode& a, const AttrNode& b);

  std::map<AttrNode, std::set<AttrNode>> edges_;
};

}  // namespace dpc

#endif  // DPC_CORE_DEPENDENCY_GRAPH_H_
