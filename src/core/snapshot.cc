#include "src/core/snapshot.h"

#include <algorithm>

namespace dpc {

namespace {
constexpr uint32_t kSnapshotMagic = 0x44504353;  // "DPCS"
}  // namespace

void NodeSnapshot::Serialize(ByteWriter& w) const {
  w.PutU32(kSnapshotMagic);
  w.PutU32(static_cast<uint32_t>(node));
  w.PutBool(prov_with_evid);
  w.PutBool(rule_exec_with_next);
  w.PutVarint(prov.size());
  for (const ProvEntry& e : prov) e.Serialize(w, prov_with_evid);
  w.PutVarint(rule_exec.size());
  for (const RuleExecEntry& e : rule_exec) {
    e.Serialize(w, rule_exec_with_next);
  }
  w.PutVarint(exec_nodes.size());
  for (const RuleExecNodeEntry& e : exec_nodes) e.Serialize(w);
  w.PutVarint(exec_links.size());
  for (const RuleExecLinkEntry& e : exec_links) e.Serialize(w);
  w.PutVarint(events.size());
  for (const Tuple& t : events) t.Serialize(w);
  w.PutVarint(tuples.size());
  for (const Tuple& t : tuples) t.Serialize(w);
}

Result<NodeSnapshot> NodeSnapshot::Deserialize(ByteReader& r) {
  NodeSnapshot s;
  DPC_ASSIGN_OR_RETURN(uint32_t magic, r.GetU32());
  if (magic != kSnapshotMagic) {
    return Status::ParseError("not a provenance snapshot");
  }
  DPC_ASSIGN_OR_RETURN(uint32_t node, r.GetU32());
  s.node = static_cast<NodeId>(node);
  DPC_ASSIGN_OR_RETURN(s.prov_with_evid, r.GetBool());
  DPC_ASSIGN_OR_RETURN(s.rule_exec_with_next, r.GetBool());

  DPC_ASSIGN_OR_RETURN(uint64_t n_prov, r.GetVarint());
  for (uint64_t i = 0; i < n_prov; ++i) {
    DPC_ASSIGN_OR_RETURN(ProvEntry e,
                         ProvEntry::Deserialize(r, s.prov_with_evid));
    s.prov.push_back(std::move(e));
  }
  DPC_ASSIGN_OR_RETURN(uint64_t n_exec, r.GetVarint());
  for (uint64_t i = 0; i < n_exec; ++i) {
    DPC_ASSIGN_OR_RETURN(
        RuleExecEntry e,
        RuleExecEntry::Deserialize(r, s.rule_exec_with_next));
    s.rule_exec.push_back(std::move(e));
  }
  DPC_ASSIGN_OR_RETURN(uint64_t n_nodes, r.GetVarint());
  for (uint64_t i = 0; i < n_nodes; ++i) {
    DPC_ASSIGN_OR_RETURN(RuleExecNodeEntry e,
                         RuleExecNodeEntry::Deserialize(r));
    s.exec_nodes.push_back(std::move(e));
  }
  DPC_ASSIGN_OR_RETURN(uint64_t n_links, r.GetVarint());
  for (uint64_t i = 0; i < n_links; ++i) {
    DPC_ASSIGN_OR_RETURN(RuleExecLinkEntry e,
                         RuleExecLinkEntry::Deserialize(r));
    s.exec_links.push_back(std::move(e));
  }
  DPC_ASSIGN_OR_RETURN(uint64_t n_events, r.GetVarint());
  for (uint64_t i = 0; i < n_events; ++i) {
    DPC_ASSIGN_OR_RETURN(Tuple t, Tuple::Deserialize(r));
    s.events.push_back(std::move(t));
  }
  DPC_ASSIGN_OR_RETURN(uint64_t n_tuples, r.GetVarint());
  for (uint64_t i = 0; i < n_tuples; ++i) {
    DPC_ASSIGN_OR_RETURN(Tuple t, Tuple::Deserialize(r));
    s.tuples.push_back(std::move(t));
  }
  return s;
}

size_t NodeSnapshot::SerializedSize() const {
  ByteWriter w;
  Serialize(w);
  return w.size();
}

NodeSnapshot SnapshotTables(NodeId node, const ProvTable& prov,
                            bool prov_with_evid,
                            const RuleExecTable& rule_exec,
                            bool rule_exec_with_next,
                            const TupleStore& events,
                            const TupleStore& tuples,
                            const RuleExecNodeTable* exec_nodes,
                            const RuleExecLinkTable* exec_links) {
  NodeSnapshot s;
  s.node = node;
  s.prov_with_evid = prov_with_evid;
  s.rule_exec_with_next = rule_exec_with_next;
  s.prov = prov.rows();
  s.rule_exec = rule_exec.rows();
  if (exec_nodes != nullptr) s.exec_nodes = exec_nodes->rows();
  if (exec_links != nullptr) s.exec_links = exec_links->rows();
  events.ForEach([&](const Tuple& t) { s.events.push_back(t); });
  tuples.ForEach([&](const Tuple& t) { s.tuples.push_back(t); });
  // TupleStore iteration order follows its hash map; sort by VID so the
  // snapshot — and everything derived from it (checkpoint blobs, the
  // storage figures' serialized files) — is canonical: two stores holding
  // the same tuples serialize byte-identically.
  auto by_vid = [](const Tuple& a, const Tuple& b) {
    return a.Vid() < b.Vid();
  };
  std::sort(s.events.begin(), s.events.end(), by_vid);
  std::sort(s.tuples.begin(), s.tuples.end(), by_vid);
  return s;
}

Result<RestoredTables> RestoreTables(const NodeSnapshot& snapshot) {
  RestoredTables out(snapshot.prov_with_evid, snapshot.rule_exec_with_next);
  for (const ProvEntry& e : snapshot.prov) out.prov.Insert(e);
  for (const RuleExecEntry& e : snapshot.rule_exec) out.rule_exec.Insert(e);
  for (const RuleExecNodeEntry& e : snapshot.exec_nodes) {
    out.exec_nodes.Insert(e);
  }
  for (const RuleExecLinkEntry& e : snapshot.exec_links) {
    out.exec_links.Insert(e);
  }
  for (const Tuple& t : snapshot.events) out.events.Put(t);
  for (const Tuple& t : snapshot.tuples) out.tuples.Put(t);
  return out;
}

}  // namespace dpc
