#include "src/core/basic_recorder.h"

#include "src/obs/metrics.h"
#include "src/util/logging.h"

namespace dpc {

BasicRecorder::BasicRecorder(const Program* program, int num_nodes)
    : program_(program) {
  DPC_CHECK(program_ != nullptr);
  nodes_.resize(num_nodes);
}

Rid BasicRecorder::MakeRid(const std::string& rule_id, NodeId loc,
                           const Vid& event_vid,
                           const std::vector<Vid>& slow_vids) {
  ByteWriter w;
  w.PutString("basic-rid");
  w.PutString(rule_id);
  w.PutU32(static_cast<uint32_t>(loc));
  w.PutDigest(event_vid);
  for (const Vid& v : slow_vids) w.PutDigest(v);
  return Sha1::Hash(w.bytes().data(), w.size());
}

ProvMeta BasicRecorder::OnInject(NodeId node, const TupleRef& event) {
  ProvMeta meta;
  meta.evid = event->Vid();
  nodes_[node].events.Put(event);
  return meta;
}

ProvMeta BasicRecorder::OnRuleFired(NodeId node, const Rule& rule,
                                    const TupleRef& event,
                                    const ProvMeta& meta,
                                    const std::vector<TupleRef>& slow,
                                    const TupleRef& head) {
  (void)head;
  NodeState& state = nodes_[node];
  const Vid& event_vid = event->Vid();

  std::vector<Vid> slow_vids;
  slow_vids.reserve(slow.size());
  for (const TupleRef& t : slow) {
    slow_vids.push_back(t->Vid());
    // Keep referenced slow tuples resolvable even if later deleted from the
    // live database (§5.5: deletions do not invalidate provenance).
    state.tuples.Put(t);
  }

  Rid rid = MakeRid(rule.id, node, event_vid, slow_vids);

  // The VIDS column: slow tuples always; the input event only on the leaf
  // (first) rule, where reconstruction bottoms out (Table 2's rid1 row).
  std::vector<Vid> column_vids;
  bool is_leaf = meta.prev.IsNull();
  if (is_leaf) column_vids.push_back(event_vid);
  column_vids.insert(column_vids.end(), slow_vids.begin(), slow_vids.end());

  state.rule_exec.Insert(
      RuleExecEntry{node, rid, rule.id, column_vids, meta.prev});
  GlobalMetrics().GetCounter("recorder.basic.rule_exec_rows").IncrementAt(node);

  ProvMeta out = meta;
  out.prev = NodeRid{node, rid};
  return out;
}

void BasicRecorder::OnOutput(NodeId node, const TupleRef& output,
                             const ProvMeta& meta) {
  if (!program_->IsOfInterest(output->relation())) return;
  if (meta.prev.IsNull()) {
    DPC_LOG(Warning) << "output " << output->ToString()
                     << " emitted without any recorded rule execution";
    return;
  }
  nodes_[node].prov.Insert(
      ProvEntry{node, output->Vid(), meta.prev, Vid{}});
  GlobalMetrics().GetCounter("recorder.basic.prov_rows").IncrementAt(node);
}

void BasicRecorder::SerializeMeta(const ProvMeta& meta, ByteWriter& w) const {
  // Basic ships the previous rule execution's (RLoc, RID) with each event.
  meta.prev.Serialize(w);
}

Result<ProvMeta> BasicRecorder::DeserializeMeta(ByteReader& r) const {
  ProvMeta meta;
  DPC_ASSIGN_OR_RETURN(meta.prev, NodeRid::Deserialize(r));
  return meta;
}

NodeSnapshot BasicRecorder::SnapshotAt(NodeId node) const {
  const NodeState& state = nodes_[node];
  return SnapshotTables(node, state.prov, /*prov_with_evid=*/false,
                        state.rule_exec, /*rule_exec_with_next=*/true,
                        state.events, state.tuples);
}

void BasicRecorder::SerializeNodeState(NodeId node, ByteWriter& w) const {
  SnapshotAt(node).Serialize(w);
}

Status BasicRecorder::RestoreNodeState(NodeId node, ByteReader& r) {
  DPC_ASSIGN_OR_RETURN(NodeSnapshot snap, NodeSnapshot::Deserialize(r));
  if (snap.node != node) {
    return Status::InvalidArgument("snapshot is for node " +
                                   std::to_string(snap.node));
  }
  if (snap.prov_with_evid || !snap.rule_exec_with_next) {
    return Status::InvalidArgument("snapshot schema is not Basic's");
  }
  DPC_ASSIGN_OR_RETURN(RestoredTables tables, RestoreTables(snap));
  NodeState& state = nodes_[node];
  state.prov = std::move(tables.prov);
  state.rule_exec = std::move(tables.rule_exec);
  state.events = std::move(tables.events);
  state.tuples = std::move(tables.tuples);
  return Status::OK();
}

StorageBreakdown BasicRecorder::StorageAt(NodeId node) const {
  const NodeState& state = nodes_[node];
  StorageBreakdown s;
  s.prov = state.prov.SerializedBytes();
  s.rule_exec = state.rule_exec.SerializedBytes();
  s.event_store = state.events.SerializedBytes();
  s.tuple_store = state.tuples.SerializedBytes();
  return s;
}

}  // namespace dpc
