#include "src/core/wal.h"

#include <cerrno>
#include <cstring>

#if defined(__unix__) || defined(__APPLE__)
#include <fcntl.h>
#include <unistd.h>
#endif

#include "src/util/hash.h"
#include "src/util/logging.h"

namespace dpc {

namespace {

constexpr uint32_t kCheckpointMagic = 0x44504357;  // "DPCW"
// Frames and checkpoint blobs larger than this are hostile or corrupt: a
// single logical record is bounded by a few tuples, and a node checkpoint
// by the node's tables — both far below 1 GiB. Rejecting early keeps a
// flipped length byte from driving a multi-gigabyte allocation.
constexpr uint64_t kMaxFrameBytes = uint64_t{1} << 30;

Status IoError(const std::string& what, const std::string& path) {
  return Status::Internal(what + " " + path + ": " + std::strerror(errno));
}

Result<std::vector<uint8_t>> ReadFileBytes(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    if (errno == ENOENT) {
      return Status::NotFound("no such file: " + path);
    }
    return IoError("open", path);
  }
  std::vector<uint8_t> bytes;
  uint8_t buf[1 << 16];
  size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) {
    bytes.insert(bytes.end(), buf, buf + n);
  }
  bool bad = std::ferror(f) != 0;
  std::fclose(f);
  if (bad) return IoError("read", path);
  return bytes;
}

// Makes a rename in `path`'s directory durable: without this a power
// loss can roll back the rename even though the renamed file's contents
// were fsynced. No-op on platforms without directory fsync.
Status SyncParentDir(const std::string& path) {
#if defined(__unix__) || defined(__APPLE__)
  size_t slash = path.find_last_of('/');
  std::string dir = slash == std::string::npos ? "." : path.substr(0, slash);
  int fd = ::open(dir.c_str(), O_RDONLY);
  if (fd < 0) return IoError("open", dir);
  int rc = ::fsync(fd);
  ::close(fd);
  if (rc != 0) return IoError("fsync", dir);
#else
  (void)path;
#endif
  return Status::OK();
}

}  // namespace

void WalRecord::Serialize(ByteWriter& w) const {
  w.PutVarint(seq);
  w.PutU8(static_cast<uint8_t>(kind));
  w.PutVarint(static_cast<uint64_t>(node));
  switch (kind) {
    case WalRecordKind::kInject:
    case WalRecordKind::kSlowInsert:
    case WalRecordKind::kSlowDelete:
      tuple.Serialize(w);
      break;
    case WalRecordKind::kRuleFired:
      w.PutString(rule_id);
      tuple.Serialize(w);
      head.Serialize(w);
      w.PutVarint(slow.size());
      for (const Tuple& t : slow) t.Serialize(w);
      w.PutString(std::string_view(
          reinterpret_cast<const char*>(meta.data()), meta.size()));
      break;
    case WalRecordKind::kOutput:
    case WalRecordKind::kArrival:
      tuple.Serialize(w);
      w.PutString(std::string_view(
          reinterpret_cast<const char*>(meta.data()), meta.size()));
      break;
    case WalRecordKind::kControlSignal:
      break;
  }
}

Result<WalRecord> WalRecord::Deserialize(ByteReader& r) {
  WalRecord rec;
  DPC_ASSIGN_OR_RETURN(rec.seq, r.GetVarint());
  DPC_ASSIGN_OR_RETURN(uint8_t kind, r.GetU8());
  if (kind < static_cast<uint8_t>(WalRecordKind::kInject) ||
      kind > static_cast<uint8_t>(WalRecordKind::kControlSignal)) {
    return Status::ParseError("wal: unknown record kind " +
                              std::to_string(kind));
  }
  rec.kind = static_cast<WalRecordKind>(kind);
  DPC_ASSIGN_OR_RETURN(uint64_t node, r.GetVarint());
  if (node > static_cast<uint64_t>(INT32_MAX)) {
    return Status::ParseError("wal: node id out of range");
  }
  rec.node = static_cast<NodeId>(node);
  switch (rec.kind) {
    case WalRecordKind::kInject:
    case WalRecordKind::kSlowInsert:
    case WalRecordKind::kSlowDelete: {
      DPC_ASSIGN_OR_RETURN(rec.tuple, Tuple::Deserialize(r));
      break;
    }
    case WalRecordKind::kRuleFired: {
      DPC_ASSIGN_OR_RETURN(rec.rule_id, r.GetString());
      DPC_ASSIGN_OR_RETURN(rec.tuple, Tuple::Deserialize(r));
      DPC_ASSIGN_OR_RETURN(rec.head, Tuple::Deserialize(r));
      DPC_ASSIGN_OR_RETURN(uint64_t n_slow, r.GetVarint());
      if (n_slow > kMaxFrameBytes) {
        return Status::ParseError("wal: hostile slow-tuple count");
      }
      for (uint64_t i = 0; i < n_slow; ++i) {
        DPC_ASSIGN_OR_RETURN(Tuple t, Tuple::Deserialize(r));
        rec.slow.push_back(std::move(t));
      }
      DPC_ASSIGN_OR_RETURN(std::string meta, r.GetString());
      rec.meta.assign(meta.begin(), meta.end());
      break;
    }
    case WalRecordKind::kOutput:
    case WalRecordKind::kArrival: {
      DPC_ASSIGN_OR_RETURN(rec.tuple, Tuple::Deserialize(r));
      DPC_ASSIGN_OR_RETURN(std::string meta, r.GetString());
      rec.meta.assign(meta.begin(), meta.end());
      break;
    }
    case WalRecordKind::kControlSignal:
      break;
  }
  return rec;
}

WalWriter::~WalWriter() {
  if (file_ != nullptr) std::fclose(file_);
}

WalWriter::WalWriter(WalWriter&& other) noexcept
    : file_(other.file_),
      path_(std::move(other.path_)),
      sync_(other.sync_),
      flush_each_(other.flush_each_),
      bytes_written_(other.bytes_written_) {
  other.file_ = nullptr;
}

WalWriter& WalWriter::operator=(WalWriter&& other) noexcept {
  if (this != &other) {
    if (file_ != nullptr) std::fclose(file_);
    file_ = other.file_;
    path_ = std::move(other.path_);
    sync_ = other.sync_;
    flush_each_ = other.flush_each_;
    bytes_written_ = other.bytes_written_;
    other.file_ = nullptr;
  }
  return *this;
}

Result<WalWriter> WalWriter::Open(const std::string& path, bool sync,
                                  bool flush_each) {
  WalWriter w;
  w.file_ = std::fopen(path.c_str(), "ab");
  if (w.file_ == nullptr) return IoError("open", path);
  w.path_ = path;
  w.sync_ = sync;
  w.flush_each_ = flush_each;
  return w;
}

Status WalWriter::Append(const WalRecord& record) {
  DPC_CHECK(file_ != nullptr) << "append to a closed WAL";
  // The scratch buffers keep their capacity across appends: the hot path
  // allocates only while the largest-yet record is growing them.
  scratch_.Clear();
  record.Serialize(scratch_);
  const std::vector<uint8_t>& body = scratch_.bytes();
  header_.Clear();
  header_.PutU32(static_cast<uint32_t>(body.size()));
  header_.PutU64(Fnv1a::HashBytes(body.data(), body.size()));
  const std::vector<uint8_t>& header = header_.bytes();
  if (std::fwrite(header.data(), 1, header.size(), file_) != header.size() ||
      std::fwrite(body.data(), 1, body.size(), file_) != body.size()) {
    return IoError("write", path_);
  }
  // Flush to the OS so a kill -9 cannot lose an acknowledged record (the
  // page cache holds it; `sync_` upgrades that to surviving power loss).
  // Group-commit mode (flush_each off) skips the per-record syscall and
  // accepts losing the stdio-buffered tail on a crash.
  if (flush_each_) {
    if (std::fflush(file_) != 0) return IoError("flush", path_);
#if defined(__unix__) || defined(__APPLE__)
    if (sync_ && fsync(fileno(file_)) != 0) return IoError("fsync", path_);
#endif
  }
  bytes_written_ += header.size() + body.size();
  return Status::OK();
}

Status WalWriter::Flush() {
  DPC_CHECK(file_ != nullptr) << "flush of a closed WAL";
  if (std::fflush(file_) != 0) return IoError("flush", path_);
#if defined(__unix__) || defined(__APPLE__)
  if (sync_ && fsync(fileno(file_)) != 0) return IoError("fsync", path_);
#endif
  return Status::OK();
}

Status WalWriter::Reset() {
  DPC_CHECK(file_ != nullptr) << "reset of a closed WAL";
  std::fclose(file_);
  file_ = std::fopen(path_.c_str(), "wb");
  if (file_ == nullptr) return IoError("truncate", path_);
  return Status::OK();
}

Result<WalReadResult> ReadWal(const std::string& path) {
  WalReadResult out;
  Result<std::vector<uint8_t>> bytes = ReadFileBytes(path);
  if (!bytes.ok()) {
    if (bytes.status().code() == StatusCode::kNotFound) return out;
    return bytes.status();
  }
  const std::vector<uint8_t>& buf = *bytes;
  size_t pos = 0;
  while (pos < buf.size()) {
    // A short header is a torn tail, not a fatal error.
    if (buf.size() - pos < 12) {
      out.corrupt_frames = 1;
      break;
    }
    ByteReader header(buf.data() + pos, 12);
    uint32_t len = *header.GetU32();
    uint64_t checksum = *header.GetU64();
    if (len > kMaxFrameBytes || buf.size() - pos - 12 < len) {
      out.corrupt_frames = 1;  // hostile length or truncated payload
      break;
    }
    const uint8_t* payload = buf.data() + pos + 12;
    if (Fnv1a::HashBytes(payload, len) != checksum) {
      out.corrupt_frames = 1;
      break;
    }
    ByteReader r(payload, len);
    Result<WalRecord> rec = WalRecord::Deserialize(r);
    if (!rec.ok()) {
      out.corrupt_frames = 1;
      break;
    }
    out.records.push_back(std::move(*rec));
    pos += 12 + len;
    out.bytes_scanned = pos;
  }
  return out;
}

Status TruncateWal(const std::string& path, uint64_t bytes) {
#if defined(__unix__) || defined(__APPLE__)
  if (::truncate(path.c_str(), static_cast<off_t>(bytes)) != 0) {
    if (errno == ENOENT) return Status::OK();
    return IoError("truncate", path);
  }
  return Status::OK();
#else
  // Portable fallback: rewrite the intact prefix under a fresh file.
  Result<std::vector<uint8_t>> all = ReadFileBytes(path);
  if (!all.ok()) {
    if (all.status().code() == StatusCode::kNotFound) return Status::OK();
    return all.status();
  }
  if (bytes > all->size()) bytes = all->size();
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) return IoError("truncate", path);
  bool ok = bytes == 0 ||
            std::fwrite(all->data(), 1, bytes, f) == bytes;
  if (std::fclose(f) != 0) ok = false;
  if (!ok) return IoError("truncate", path);
  return Status::OK();
#endif
}

Status WriteCheckpoint(const std::string& path, const CheckpointData& data,
                       bool sync) {
  // The checksum covers the whole payload — watermark and epoch included.
  // A flipped watermark would silently change which WAL records replay,
  // so the header gets no less protection than the state blob.
  ByteWriter payload;
  payload.PutVarint(static_cast<uint64_t>(data.node));
  payload.PutVarint(data.watermark);
  payload.PutVarint(data.epoch);
  payload.PutU32(static_cast<uint32_t>(data.state.size()));
  const std::vector<uint8_t>& body = payload.bytes();
  ByteWriter w;
  w.PutU32(kCheckpointMagic);
  w.PutU32(static_cast<uint32_t>(body.size() + data.state.size()));
  Fnv1a hasher;
  hasher.PutBytes(body.data(), body.size());
  hasher.PutBytes(data.state.data(), data.state.size());
  w.PutU64(hasher.hash());
  std::string tmp = path + ".tmp";
  std::FILE* f = std::fopen(tmp.c_str(), "wb");
  if (f == nullptr) return IoError("open", tmp);
  const std::vector<uint8_t>& header = w.bytes();
  bool ok =
      std::fwrite(header.data(), 1, header.size(), f) == header.size() &&
      std::fwrite(body.data(), 1, body.size(), f) == body.size() &&
      std::fwrite(data.state.data(), 1, data.state.size(), f) ==
          data.state.size() &&
      std::fflush(f) == 0;
#if defined(__unix__) || defined(__APPLE__)
  ok = ok && fsync(fileno(f)) == 0;
#endif
  if (std::fclose(f) != 0) ok = false;
  if (!ok) {
    std::remove(tmp.c_str());
    return IoError("write", tmp);
  }
  // Atomic cutover: a crash leaves either the old checkpoint or the new
  // one, never a half-written file under the canonical name.
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return IoError("rename", tmp);
  }
  // Power-loss ordering: the rename itself lives in the directory, so a
  // caller about to truncate the WAL this checkpoint supersedes needs
  // the directory entry on disk first — otherwise the truncation can
  // persist while the rename rolls back, losing the records between the
  // old and new watermarks. Only the fsync-per-record mode pays for it.
  if (sync) DPC_RETURN_NOT_OK(SyncParentDir(path));
  return Status::OK();
}

Result<CheckpointData> ReadCheckpoint(const std::string& path) {
  DPC_ASSIGN_OR_RETURN(std::vector<uint8_t> bytes, ReadFileBytes(path));
  ByteReader r(bytes);
  DPC_ASSIGN_OR_RETURN(uint32_t magic, r.GetU32());
  if (magic != kCheckpointMagic) {
    return Status::ParseError("not a provenance checkpoint: " + path);
  }
  DPC_ASSIGN_OR_RETURN(uint32_t payload_len, r.GetU32());
  DPC_ASSIGN_OR_RETURN(uint64_t checksum, r.GetU64());
  if (payload_len > kMaxFrameBytes || r.remaining() != payload_len) {
    return Status::ParseError("checkpoint: truncated or hostile length");
  }
  // Verify the checksum over the whole payload before trusting a single
  // decoded field: a flipped watermark is as dangerous as flipped state.
  const uint8_t* payload = bytes.data() + (bytes.size() - r.remaining());
  if (Fnv1a::HashBytes(payload, payload_len) != checksum) {
    return Status::ParseError("checkpoint: checksum mismatch");
  }
  CheckpointData data;
  DPC_ASSIGN_OR_RETURN(uint64_t node, r.GetVarint());
  if (node > static_cast<uint64_t>(INT32_MAX)) {
    return Status::ParseError("checkpoint: node id out of range");
  }
  data.node = static_cast<NodeId>(node);
  DPC_ASSIGN_OR_RETURN(data.watermark, r.GetVarint());
  DPC_ASSIGN_OR_RETURN(data.epoch, r.GetVarint());
  DPC_ASSIGN_OR_RETURN(uint32_t len, r.GetU32());
  if (r.remaining() != len) {
    return Status::ParseError("checkpoint: state length mismatch");
  }
  const uint8_t* state = bytes.data() + (bytes.size() - r.remaining());
  data.state.assign(state, state + len);
  return data;
}

std::string WalPath(const std::string& dir, NodeId node) {
  return dir + "/node-" + std::to_string(node) + ".wal";
}

std::string CheckpointPath(const std::string& dir, NodeId node) {
  return dir + "/node-" + std::to_string(node) + ".ckpt";
}

}  // namespace dpc
