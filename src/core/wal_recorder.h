// WalRecorder: the durability layer under a ProvenanceRecorder.
//
// A decorator that logs every recorder mutation to a per-node write-ahead
// log (src/core/wal.h) before forwarding it to the wrapped scheme, cuts
// periodic compacted checkpoints (SerializeNodeState per node, atomic
// tmp+rename, then the now-redundant WAL prefix is truncated), and
// rebuilds the wrapped recorder after a crash by restoring the latest
// checkpoint and replaying the WAL tail through the real hooks — the same
// code path that built the state originally, so recovered tables are
// byte-identical to an uninterrupted run's (docs/persistence.md).
//
// Shard safety: node n's hooks run on n's shard (or the idle
// coordinator), so each per-node WAL writer has a single writer thread —
// the same ownership discipline as the recorder state it journals.
// Checkpoint() and Recover() touch every node and must run at a global
// barrier (Testbed::ScheduleGlobal) or while the run is idle.
//
// Replay runs under MetricsPauseGuard and IdentityPauseGuard: rebuilding
// state must not re-increment recorder.* metrics or the identity
// counters, or a recovered process would double-report work it already
// did before the crash.
#ifndef DPC_CORE_WAL_RECORDER_H_
#define DPC_CORE_WAL_RECORDER_H_

#include <atomic>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/core/recorder.h"
#include "src/core/wal.h"
#include "src/ndlog/program.h"

namespace dpc {

class Counter;

struct WalOptions {
  // Directory holding node-N.wal / node-N.ckpt; must exist.
  std::string dir;
  // fsync every record (survive power loss, not just kill -9). Off by
  // default: every append is still flushed to the OS page cache.
  bool sync_each_record = false;
  // Flush every record to the OS (the kill -9 guarantee). Turning this off
  // is group-commit: appends sit in the stdio buffer until a checkpoint or
  // shutdown, a crash loses the buffered tail, and recovery returns a
  // consistent prefix instead of everything acknowledged.
  bool flush_each_record = true;
};

// What Recover() did, for logs/tests.
struct WalRecoveryStats {
  int nodes_with_checkpoint = 0;
  uint64_t records_replayed = 0;
  uint64_t records_skipped = 0;   // already covered by a checkpoint
  uint64_t corrupt_frames = 0;    // torn/corrupt WAL tails hit (per node)
};

class WalRecorder : public ProvenanceRecorder {
 public:
  // `inner` must support node-state durability (every paper scheme does;
  // the tree-shipping ReferenceRecorder does not) and must outlive the
  // decorator. Scans any existing log files so appended sequence numbers
  // continue after a restart; a torn tail left by a crash is truncated to
  // the intact prefix so post-restart appends land at a decodable
  // position (the loss is reported by the next Recover()).
  static Result<std::unique_ptr<WalRecorder>> Attach(
      ProvenanceRecorder* inner, const Program* program, int num_nodes,
      WalOptions options);

  // --- logging hooks: journal, then forward ---------------------------
  std::string name() const override { return inner_->name(); }
  ProvMeta OnInject(NodeId node, const TupleRef& event) override;
  ProvMeta OnRuleFired(NodeId node, const Rule& rule, const TupleRef& event,
                       const ProvMeta& meta,
                       const std::vector<TupleRef>& slow,
                       const TupleRef& head) override;
  void OnOutput(NodeId node, const TupleRef& output,
                const ProvMeta& meta) override;
  void OnArrival(NodeId node, const TupleRef& tuple,
                 const ProvMeta& meta) override;
  bool OnSlowInsert(NodeId node, const TupleRef& t) override;
  void OnSlowDelete(NodeId node, const Tuple& t) override;
  void OnControlSignal(NodeId node) override;

  // --- pass-through ----------------------------------------------------
  void SerializeMeta(const ProvMeta& meta, ByteWriter& w) const override {
    inner_->SerializeMeta(meta, w);
  }
  Result<ProvMeta> DeserializeMeta(ByteReader& r) const override {
    return inner_->DeserializeMeta(r);
  }
  StorageBreakdown StorageAt(NodeId node) const override {
    return inner_->StorageAt(node);
  }
  bool SupportsNodeState() const override { return true; }
  void SerializeNodeState(NodeId node, ByteWriter& w) const override {
    inner_->SerializeNodeState(node, w);
  }
  Status RestoreNodeState(NodeId node, ByteReader& r) override {
    return inner_->RestoreNodeState(node, r);
  }
  uint64_t StateEpoch(NodeId node) const override {
    return inner_->StateEpoch(node);
  }

  // --- durability operations (idle / global-barrier only) -------------
  // Writes every node's checkpoint (watermark = last journaled seq,
  // epoch = the node's §5.5 boundary epoch), then truncates the logs the
  // checkpoints made redundant.
  Status Checkpoint();
  // Restores each node from its checkpoint (when present) and replays the
  // WAL tail through the wrapped recorder's hooks. Call on a freshly
  // constructed deployment before running. Corrupt WAL tails stop that
  // node's replay (counted, not fatal); a corrupt checkpoint is fatal for
  // recovery because the log it covered was truncated.
  Result<WalRecoveryStats> Recover();

  ProvenanceRecorder* inner() { return inner_; }
  uint64_t records_logged() const {
    return records_logged_.load(std::memory_order_relaxed);
  }
  uint64_t checkpoints_cut() const { return checkpoints_cut_; }
  // Sticky: set when any append failed (disk full, I/O error) and the
  // mutation went unjournaled — from then on the journal is a prefix of
  // the in-memory state and a crash loses the divergence. Also counted
  // per node in wal.append_errors. Under sync_each_record an append
  // failure is fatal instead: that mode is an explicit durability
  // contract, and acknowledging unjournaled mutations would break it.
  bool durability_degraded() const {
    return durability_degraded_.load(std::memory_order_relaxed);
  }

 private:
  WalRecorder(ProvenanceRecorder* inner, const Program* program,
              WalOptions options);

  struct NodeLog {
    WalWriter writer;
    uint64_t next_seq = 1;
    // Torn frames found (and truncated away) when Attach scanned this
    // node's log; surfaced through the next Recover()'s stats/metrics.
    uint64_t corrupt_frames_truncated = 0;
  };

  // Journals `record` (seq assigned here) on the owning node's log.
  void Log(WalRecord record);
  std::vector<uint8_t> EncodeMeta(const ProvMeta& meta) const;
  Status ReplayRecord(const WalRecord& record);

  ProvenanceRecorder* inner_;
  const Program* program_;
  WalOptions options_;
  std::vector<NodeLog> logs_;
  std::unordered_map<std::string, const Rule*> rules_by_id_;
  // Sharded runtimes log from every worker thread; per-node writer state
  // is shard-local but this process-wide tally is not.
  std::atomic<uint64_t> records_logged_{0};
  std::atomic<bool> durability_degraded_{false};
  uint64_t checkpoints_cut_ = 0;  // mutated only at global barriers

  struct {
    Counter* records;
    Counter* bytes;
    Counter* checkpoints;
    Counter* checkpoint_bytes;
    Counter* replayed;
    Counter* corrupt_frames;
    Counter* decode_errors;
    Counter* append_errors;
  } metrics_;
};

}  // namespace dpc

#endif  // DPC_CORE_WAL_RECORDER_H_
