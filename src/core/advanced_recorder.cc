#include "src/core/advanced_recorder.h"

#include <algorithm>
#include <utility>

#include "src/obs/metrics.h"
#include "src/util/logging.h"

namespace dpc {

AdvancedRecorder::AdvancedRecorder(const Program* program,
                                   EquivalenceKeys keys, int num_nodes,
                                   AdvancedOptions options)
    : program_(program), keys_(std::move(keys)), options_(options) {
  DPC_CHECK(program_ != nullptr);
  DPC_CHECK(keys_.event_relation() == program_->input_event_relation());
  nodes_.resize(num_nodes);
}

Rid AdvancedRecorder::MakeRid(const std::string& rule_id,
                              const std::vector<Vid>& slow_vids,
                              uint64_t epoch) {
  ByteWriter w;
  w.PutString("adv-rid");
  w.PutString(rule_id);
  w.PutU64(epoch);
  for (const Vid& v : slow_vids) w.PutDigest(v);
  return Sha1::Hash(w.bytes().data(), w.size());
}

ProvMeta AdvancedRecorder::OnInject(NodeId node, const TupleRef& event) {
  NodeState& state = nodes_[node];
  ProvMeta meta;
  meta.evid = event->Vid();
  meta.eqkey = keys_.HashOf(*event);
  // Stage 1: equivalence keys checking against htequi.
  bool first_in_class = state.htequi.insert(meta.eqkey).second;
  meta.exist_flag = !first_in_class;
  meta.maintain = first_in_class;
  // The compression ratio in one pair of counters: shared-class events
  // skip maintenance entirely.
  GlobalMetrics()
      .GetCounter(first_in_class ? "recorder.advanced.new_classes"
                                 : "recorder.advanced.shared_classes")
      .IncrementAt(node);
  // The event tuple itself is the per-tree delta (§5.1): always stored.
  state.events.Put(event);
  return meta;
}

void AdvancedRecorder::InsertRuleExecRow(NodeState& state, NodeId node,
                                         const Rid& rid,
                                         const std::string& rule_id,
                                         const std::vector<Vid>& slow_vids,
                                         const NodeRid& next) {
  if (options_.inter_class_sharing) {
    state.exec_nodes.Insert(RuleExecNodeEntry{node, rid, rule_id, slow_vids});
    state.exec_links.Insert(RuleExecLinkEntry{node, rid, next});
  } else {
    state.rule_exec.Insert(
        RuleExecEntry{node, rid, rule_id, slow_vids, next});
  }
}

ProvMeta AdvancedRecorder::OnRuleFired(NodeId node, const Rule& rule,
                                       const TupleRef& /*event*/,
                                       const ProvMeta& meta,
                                       const std::vector<TupleRef>& slow,
                                       const TupleRef& /*head*/) {
  if (!meta.maintain) {
    // Stage 2, existFlag = true: execute without recording anything.
    GlobalMetrics()
        .GetCounter("recorder.advanced.maintenance_skipped")
        .IncrementAt(node);
    return meta;
  }
  NodeState& state = nodes_[node];
  std::vector<Vid> slow_vids;
  slow_vids.reserve(slow.size());
  for (const TupleRef& t : slow) {
    slow_vids.push_back(t->Vid());
    state.tuples.Put(t);
  }
  Rid rid = MakeRid(rule.id, slow_vids, state.epoch);
  InsertRuleExecRow(state, node, rid, rule.id, slow_vids, meta.prev);
  GlobalMetrics()
      .GetCounter("recorder.advanced.rule_exec_rows")
      .IncrementAt(node);

  ProvMeta out = meta;
  out.prev = NodeRid{node, rid};
  return out;
}

void AdvancedRecorder::OnOutput(NodeId node, const TupleRef& output,
                                const ProvMeta& meta) {
  NodeState& state = nodes_[node];
  bool of_interest = program_->IsOfInterest(output->relation());

  if (meta.maintain) {
    // Stage 3, first execution of the class: register the shared tree.
    if (meta.prev.IsNull()) {
      DPC_LOG(Warning) << "output " << output->ToString()
                       << " emitted without any recorded rule execution";
      return;
    }
    state.hmap[meta.eqkey] = meta.prev;
    Counter& prov_rows =
        GlobalMetrics().GetCounter("recorder.advanced.prov_rows");
    if (of_interest) {
      state.prov.Insert(
          ProvEntry{node, output->Vid(), meta.prev, meta.evid});
      prov_rows.IncrementAt(node);
    }
    // Flush outputs of this class that overtook the shared tree.
    auto it = state.pending.find(meta.eqkey);
    if (it != state.pending.end()) {
      for (const PendingOutput& p : it->second) {
        state.prov.Insert(ProvEntry{node, p.vid, meta.prev, p.evid});
        prov_rows.IncrementAt(node);
      }
      state.pending.erase(it);
    }
    return;
  }

  if (!of_interest) return;
  auto ref = state.hmap.find(meta.eqkey);
  if (ref != state.hmap.end()) {
    state.prov.Insert(
        ProvEntry{node, output->Vid(), ref->second, meta.evid});
    GlobalMetrics()
        .GetCounter("recorder.advanced.prov_rows")
        .IncrementAt(node);
  } else {
    // The shared tree's own output has not arrived yet: park the row.
    state.pending[meta.eqkey].push_back(
        PendingOutput{output->Vid(), meta.evid});
    GlobalMetrics()
        .GetCounter("recorder.advanced.pending_parked")
        .IncrementAt(node);
  }
}

bool AdvancedRecorder::OnSlowInsert(NodeId node, const TupleRef& t) {
  // §5.5: broadcast sig (reset equivalence caches everywhere) only when the
  // slow state actually changed. A duplicate declaration — e.g. a resumed
  // deployment re-installing routes over WAL-recovered tables — is a no-op
  // and must not burn an epoch, or the compressed state would diverge from
  // an uninterrupted run.
  return nodes_[node].tuples.Put(t);
}

void AdvancedRecorder::OnControlSignal(NodeId node) {
  // §5.5: provenance must be re-maintained for every class from now on.
  // hmap is retained: existing associations describe past history; the next
  // first-in-class execution overwrites the reference with the new tree.
  // The epoch bump salts post-reset RIDs (see MakeRid).
  GlobalMetrics().GetCounter("recorder.advanced.cache_resets").IncrementAt(node);
  nodes_[node].htequi.clear();
  ++nodes_[node].epoch;
}

void AdvancedRecorder::SerializeMeta(const ProvMeta& meta,
                                     ByteWriter& w) const {
  uint8_t flags = 0;
  if (meta.exist_flag) flags |= 1;
  if (meta.maintain) flags |= 2;
  bool has_prev = !meta.prev.IsNull();
  if (has_prev) flags |= 4;
  w.PutU8(flags);
  w.PutDigest(meta.evid);
  w.PutDigest(meta.eqkey);
  if (has_prev) meta.prev.Serialize(w);
}

Result<ProvMeta> AdvancedRecorder::DeserializeMeta(ByteReader& r) const {
  ProvMeta meta;
  DPC_ASSIGN_OR_RETURN(uint8_t flags, r.GetU8());
  meta.exist_flag = (flags & 1) != 0;
  meta.maintain = (flags & 2) != 0;
  DPC_ASSIGN_OR_RETURN(meta.evid, r.GetDigest());
  DPC_ASSIGN_OR_RETURN(meta.eqkey, r.GetDigest());
  if ((flags & 4) != 0) {
    DPC_ASSIGN_OR_RETURN(meta.prev, NodeRid::Deserialize(r));
  }
  return meta;
}

NodeSnapshot AdvancedRecorder::SnapshotAt(NodeId node) const {
  const NodeState& state = nodes_[node];
  return SnapshotTables(
      node, state.prov, /*prov_with_evid=*/true, state.rule_exec,
      /*rule_exec_with_next=*/true, state.events, state.tuples,
      options_.inter_class_sharing ? &state.exec_nodes : nullptr,
      options_.inter_class_sharing ? &state.exec_links : nullptr);
}

void AdvancedRecorder::SerializeNodeState(NodeId node, ByteWriter& w) const {
  SnapshotAt(node).Serialize(w);
  const NodeState& state = nodes_[node];
  w.PutVarint(state.epoch);
  // Hash containers serialize in sorted-by-digest order so the blob is
  // canonical; the per-class pending lists keep their insertion order
  // (flush order decides prov row order, which must survive recovery).
  std::vector<Sha1Digest> keys(state.htequi.begin(), state.htequi.end());
  std::sort(keys.begin(), keys.end());
  w.PutVarint(keys.size());
  for (const Sha1Digest& k : keys) w.PutDigest(k);
  std::vector<std::pair<Sha1Digest, NodeRid>> hmap(state.hmap.begin(),
                                                   state.hmap.end());
  std::sort(hmap.begin(), hmap.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  w.PutVarint(hmap.size());
  for (const auto& [k, v] : hmap) {
    w.PutDigest(k);
    v.Serialize(w);
  }
  std::vector<const decltype(state.pending)::value_type*> pending;
  for (const auto& kv : state.pending) pending.push_back(&kv);
  std::sort(pending.begin(), pending.end(),
            [](const auto* a, const auto* b) { return a->first < b->first; });
  w.PutVarint(pending.size());
  for (const auto* kv : pending) {
    w.PutDigest(kv->first);
    w.PutVarint(kv->second.size());
    for (const PendingOutput& po : kv->second) {
      w.PutDigest(po.vid);
      w.PutDigest(po.evid);
    }
  }
}

Status AdvancedRecorder::RestoreNodeState(NodeId node, ByteReader& r) {
  DPC_ASSIGN_OR_RETURN(NodeSnapshot snap, NodeSnapshot::Deserialize(r));
  if (snap.node != node) {
    return Status::InvalidArgument("snapshot is for node " +
                                   std::to_string(snap.node));
  }
  if (!snap.prov_with_evid || !snap.rule_exec_with_next) {
    return Status::InvalidArgument("snapshot schema is not Advanced's");
  }
  DPC_ASSIGN_OR_RETURN(RestoredTables tables, RestoreTables(snap));
  NodeState& state = nodes_[node];
  state.prov = std::move(tables.prov);
  state.rule_exec = std::move(tables.rule_exec);
  state.exec_nodes = std::move(tables.exec_nodes);
  state.exec_links = std::move(tables.exec_links);
  state.events = std::move(tables.events);
  state.tuples = std::move(tables.tuples);
  DPC_ASSIGN_OR_RETURN(state.epoch, r.GetVarint());
  state.htequi.clear();
  DPC_ASSIGN_OR_RETURN(uint64_t n_keys, r.GetVarint());
  for (uint64_t i = 0; i < n_keys; ++i) {
    DPC_ASSIGN_OR_RETURN(Sha1Digest k, r.GetDigest());
    state.htequi.insert(k);
  }
  state.hmap.clear();
  DPC_ASSIGN_OR_RETURN(uint64_t n_hmap, r.GetVarint());
  for (uint64_t i = 0; i < n_hmap; ++i) {
    DPC_ASSIGN_OR_RETURN(Sha1Digest k, r.GetDigest());
    DPC_ASSIGN_OR_RETURN(NodeRid v, NodeRid::Deserialize(r));
    state.hmap[k] = v;
  }
  state.pending.clear();
  DPC_ASSIGN_OR_RETURN(uint64_t n_pending, r.GetVarint());
  for (uint64_t i = 0; i < n_pending; ++i) {
    DPC_ASSIGN_OR_RETURN(Sha1Digest k, r.GetDigest());
    DPC_ASSIGN_OR_RETURN(uint64_t n, r.GetVarint());
    // Each entry is two digests; a count the remaining bytes cannot hold
    // is hostile, and must not reach the allocator via reserve().
    if (n > r.remaining() / 40) {
      return Status::ParseError("pending-output count exceeds input");
    }
    std::vector<PendingOutput> outs;
    outs.reserve(n);
    for (uint64_t j = 0; j < n; ++j) {
      PendingOutput po;
      DPC_ASSIGN_OR_RETURN(po.vid, r.GetDigest());
      DPC_ASSIGN_OR_RETURN(po.evid, r.GetDigest());
      outs.push_back(po);
    }
    state.pending[k] = std::move(outs);
  }
  return Status::OK();
}

StorageBreakdown AdvancedRecorder::StorageAt(NodeId node) const {
  const NodeState& state = nodes_[node];
  StorageBreakdown s;
  s.prov = state.prov.SerializedBytes();
  s.rule_exec = options_.inter_class_sharing
                    ? state.exec_nodes.SerializedBytes() +
                          state.exec_links.SerializedBytes()
                    : state.rule_exec.SerializedBytes();
  s.event_store = state.events.SerializedBytes();
  s.tuple_store = state.tuples.SerializedBytes();
  return s;
}

size_t AdvancedRecorder::PendingOutputs() const {
  size_t n = 0;
  for (const NodeState& state : nodes_) {
    for (const auto& [_, v] : state.pending) n += v.size();
  }
  return n;
}

}  // namespace dpc
