// Message-driven distributed provenance querying (§5.6): the query
// actually travels the simulated network as kQuery messages, hop by hop
// along the stored provenance chains, and the measured latency comes from
// the event queue — propagation, per-link transfer of the accumulated
// response, and processing delays all accrue in simulated time.
//
// Unlike the analytic model in query.h (which charges a sequential
// depth-first walk), branch fan-outs here proceed in parallel, so the
// completion time is the max over branches — what a real deployment would
// observe. Trees returned are identical to the analytic querier's.
#ifndef DPC_CORE_DISTRIBUTED_QUERY_H_
#define DPC_CORE_DISTRIBUTED_QUERY_H_

#include <functional>
#include <memory>
#include <unordered_map>

#include "src/core/query.h"
#include "src/net/event_queue.h"
#include "src/net/network.h"

namespace dpc {

class DistributedQuerier {
 public:
  using Callback = std::function<void(Result<QueryResult>)>;

  // The querier owns a dedicated Network on `topology`/`queue`, so query
  // traffic is accounted separately from maintenance traffic.
  static std::unique_ptr<DistributedQuerier> ForExspan(
      const ExspanRecorder* recorder, const Topology* topology,
      EventQueue* queue, QueryCostModel cost = {});
  static std::unique_ptr<DistributedQuerier> ForBasic(
      const BasicRecorder* recorder, const Program* program,
      const FunctionRegistry* fns, const Topology* topology,
      EventQueue* queue, QueryCostModel cost = {});
  static std::unique_ptr<DistributedQuerier> ForAdvanced(
      const AdvancedRecorder* recorder, const Program* program,
      const FunctionRegistry* fns, const Topology* topology,
      EventQueue* queue, QueryCostModel cost = {});

  ~DistributedQuerier();

  // Launches the query protocol at simulated time `when` from the output
  // tuple's node; `cb` fires (from the event queue) on completion with the
  // reconstructed trees and the measured latency.
  void QueryAsync(const Tuple& output, const Vid* evid, SimTime when,
                  Callback cb);

  // Convenience: schedules now, drains the queue, returns the result.
  Result<QueryResult> QueryAndWait(const Tuple& output,
                                   const Vid* evid = nullptr);

  // Accounting for the query traffic itself.
  Network& network() { return net_; }

  // Implementation detail (defined in the .cc); public so the protocol
  // driver in the anonymous namespace can reach it.
  struct Impl;

 private:
  DistributedQuerier(const Topology* topology, EventQueue* queue,
                     QueryCostModel cost);

  void HandleMessage(const Message& msg);

  const Topology* topology_;
  EventQueue* queue_;
  QueryCostModel cost_;
  Network net_;
  // In-flight continuations keyed by the id embedded in message payloads.
  std::unordered_map<uint64_t, std::function<void()>> continuations_;
  uint64_t next_continuation_ = 1;
  std::unique_ptr<Impl> impl_;
};

}  // namespace dpc

#endif  // DPC_CORE_DISTRIBUTED_QUERY_H_
