// Message-driven distributed provenance querying (§5.6): the query
// actually travels the simulated network as kQuery messages, hop by hop
// along the stored provenance chains, and the measured latency comes from
// the event queue — propagation, per-link transfer of the accumulated
// response, and processing delays all accrue in simulated time.
//
// Unlike the analytic model in query.h (which charges a sequential
// depth-first walk), branch fan-outs here proceed in parallel, so the
// completion time is the max over branches — what a real deployment would
// observe. Trees returned are identical to the analytic querier's.
//
// Fault tolerance: by default query frames ride the raw (lossy) Network.
// EnableReliableTransport() layers ack/retransmit/dedup delivery
// (net/transport.h) underneath, and per-query deadlines guarantee the
// callback always fires — with the result, or with DeadlineExceeded when
// loss or a partition stalls the protocol. A query never hangs and never
// aborts the process.
#ifndef DPC_CORE_DISTRIBUTED_QUERY_H_
#define DPC_CORE_DISTRIBUTED_QUERY_H_

#include <functional>
#include <memory>
#include <unordered_map>

#include "src/core/query.h"
#include "src/net/event_queue.h"
#include "src/net/network.h"
#include "src/net/transport.h"

namespace dpc {

class DistributedQuerier {
 public:
  using Callback = std::function<void(Result<QueryResult>)>;

  // The querier owns a dedicated Network on `topology`/`queue`, so query
  // traffic is accounted separately from maintenance traffic.
  static std::unique_ptr<DistributedQuerier> ForExspan(
      const ExspanRecorder* recorder, const Topology* topology,
      EventQueue* queue, QueryCostModel cost = {});
  static std::unique_ptr<DistributedQuerier> ForBasic(
      const BasicRecorder* recorder, const Program* program,
      const FunctionRegistry* fns, const Topology* topology,
      EventQueue* queue, QueryCostModel cost = {});
  static std::unique_ptr<DistributedQuerier> ForAdvanced(
      const AdvancedRecorder* recorder, const Program* program,
      const FunctionRegistry* fns, const Topology* topology,
      EventQueue* queue, QueryCostModel cost = {});

  ~DistributedQuerier();

  // Switches query traffic onto a ReliableTransport over the querier's
  // network, so dropped kQuery frames are retransmitted and deduplicated.
  // Must be called before the first query is launched.
  void EnableReliableTransport(TransportOptions options = {});

  // Deadline applied to every query that does not pass its own (seconds
  // of simulated time from launch; 0 disables). When a query misses its
  // deadline the callback fires with Status::DeadlineExceeded.
  void set_default_deadline_s(double deadline_s) {
    default_deadline_s_ = deadline_s;
  }
  double default_deadline_s() const { return default_deadline_s_; }

  // Launches the query protocol at simulated time `when` from the output
  // tuple's node; `cb` fires (from the event queue) on completion with the
  // reconstructed trees and the measured latency, or with a Status —
  // DeadlineExceeded after `deadline_s` (0 = default deadline) without
  // completion.
  void QueryAsync(const Tuple& output, const Vid* evid, SimTime when,
                  Callback cb) {
    QueryAsync(output, evid, when, /*deadline_s=*/0, std::move(cb));
  }
  void QueryAsync(const Tuple& output, const Vid* evid, SimTime when,
                  double deadline_s, Callback cb);

  // Convenience: schedules now, drains the queue, returns the result.
  // Never aborts: a query orphaned by message loss yields
  // Status::DeadlineExceeded instead.
  Result<QueryResult> QueryAndWait(const Tuple& output,
                                   const Vid* evid = nullptr);

  // Accounting for the query traffic itself.
  Network& network() { return net_; }
  // Null until EnableReliableTransport is called.
  ReliableTransport* transport() { return transport_.get(); }

  // Processes one incoming kQuery frame. Wired as the channel's delivery
  // handler; public so tests can push arbitrary (malformed, truncated,
  // duplicated) peer bytes straight at the querier. Returns
  // InvalidArgument for an undecodable frame and NotFound for a
  // continuation id this querier no longer (or never) knew — e.g. a
  // straggler transmission arriving after its frame was abandoned. Both
  // are counted ("query.malformed_messages" / "query.unknown_
  // continuations") and neither ever aborts the process.
  Status HandleMessage(const Message& msg);

  // Implementation details (defined in the .cc); public so the protocol
  // driver in the anonymous namespace can reach them.
  struct Impl;
  // A registered continuation for an in-flight kQuery frame: `fn` runs on
  // delivery, `on_fail` when the transport abandons the frame.
  struct Continuation {
    std::function<void()> fn;
    std::function<void()> on_fail;
  };

 private:
  DistributedQuerier(const Topology* topology, EventQueue* queue,
                     QueryCostModel cost);

  void HandleDeliveryFailure(const Message& msg);

  const Topology* topology_;
  EventQueue* queue_;
  QueryCostModel cost_;
  Network net_;
  std::unique_ptr<ReliableTransport> transport_;
  double default_deadline_s_ = 0;
  // In-flight continuations keyed by the id embedded in message payloads.
  std::unordered_map<uint64_t, Continuation> continuations_;
  uint64_t next_continuation_ = 1;
  uint64_t next_query_id_ = 1;
  std::unique_ptr<Impl> impl_;
};

}  // namespace dpc

#endif  // DPC_CORE_DISTRIBUTED_QUERY_H_
