#include "src/core/equivalence_keys.h"

#include <algorithm>

#include "src/util/logging.h"
#include "src/util/serial.h"

namespace dpc {

bool EquivalenceKeys::Contains(size_t index) const {
  return std::binary_search(indices_.begin(), indices_.end(), index);
}

Sha1Digest EquivalenceKeys::HashOf(const Tuple& event) const {
  DPC_DCHECK(event.relation() == event_relation_)
      << "expected " << event_relation_ << ", got " << event.relation();
  ByteWriter w;
  w.PutString(event_relation_);
  for (size_t i : indices_) {
    DPC_CHECK(i < event.arity());
    event.at(i).Serialize(w);
  }
  return Sha1::Hash(w.bytes().data(), w.size());
}

bool EquivalenceKeys::Equivalent(const Tuple& a, const Tuple& b) const {
  if (a.relation() != event_relation_ || b.relation() != event_relation_) {
    return false;
  }
  for (size_t i : indices_) {
    if (a.at(i) != b.at(i)) return false;
  }
  return true;
}

std::string EquivalenceKeys::ToString() const {
  std::string out = "(";
  for (size_t k = 0; k < indices_.size(); ++k) {
    if (k > 0) out += ", ";
    out += event_relation_ + ":" + std::to_string(indices_[k]);
  }
  out += ")";
  return out;
}

Result<EquivalenceKeys> ComputeEquivalenceKeys(const Program& program) {
  DependencyGraph graph = DependencyGraph::Build(program);
  return ComputeEquivalenceKeys(program, graph);
}

Result<EquivalenceKeys> ComputeEquivalenceKeys(const Program& program,
                                               const DependencyGraph& graph) {
  EquivalenceKeys keys;
  keys.event_relation_ = program.input_event_relation();

  // Targets: attributes of slow-changing relations, plus attributes
  // mentioned in comparison constraints (conservative strengthening).
  std::set<AttrNode> targets;
  for (const AttrNode& n : graph.Nodes()) {
    if (program.IsSlowChanging(n.relation)) targets.insert(n);
  }
  for (const Rule& rule : program.rules()) {
    for (const Constraint& c : rule.constraints) {
      std::vector<std::string> vars;
      c.expr->CollectVars(vars);
      // Map constraint variables back to their attribute positions in this
      // rule's atoms.
      auto add_positions = [&](const Atom& atom) {
        for (size_t i = 0; i < atom.args.size(); ++i) {
          if (!atom.args[i].is_var()) continue;
          if (std::find(vars.begin(), vars.end(), atom.args[i].var) !=
              vars.end()) {
            targets.insert(AttrNode{atom.relation, i});
          }
        }
      };
      for (const Atom& atom : rule.atoms) add_positions(atom);
      add_positions(rule.head);
    }
  }

  // The event relation's arity: take it from r1's event atom.
  const Atom& ev_atom = program.rules().front().EventAtom();
  for (size_t i = 0; i < ev_atom.args.size(); ++i) {
    AttrNode node{keys.event_relation_, i};
    if (i == 0) {
      // The input location always participates (GetEquiKeys line 3): no two
      // events injected at different nodes may share an equivalence class.
      keys.indices_.push_back(i);
      continue;
    }
    std::set<AttrNode> reach = graph.ReachableSet(node);
    bool is_key = false;
    for (const AttrNode& r : reach) {
      if (targets.count(r) > 0) {
        is_key = true;
        break;
      }
    }
    if (is_key) keys.indices_.push_back(i);
  }
  return keys;
}

}  // namespace dpc
