#include "src/core/equivalence_keys.h"

#include <algorithm>

#include "src/util/logging.h"
#include "src/util/serial.h"

namespace dpc {

namespace {

// The key-forcing target attributes of GetEquiKeys, split by why they
// force: attributes of slow-changing relations (joins against network
// state) and attributes mentioned in constraints (outcomes gate rule
// firing, hence tree shape; the conservative strengthening of DESIGN.md
// §2).
struct KeyTargets {
  std::set<AttrNode> slow;
  std::set<AttrNode> constrained;

  std::set<AttrNode> All() const {
    std::set<AttrNode> all = slow;
    all.insert(constrained.begin(), constrained.end());
    return all;
  }
};

KeyTargets CollectKeyTargets(const Program& program,
                             const DependencyGraph& graph) {
  KeyTargets targets;
  for (const AttrNode& n : graph.Nodes()) {
    if (program.IsSlowChanging(n.relation)) targets.slow.insert(n);
  }
  for (const Rule& rule : program.rules()) {
    for (const Constraint& c : rule.constraints) {
      std::vector<std::string> vars;
      c.expr->CollectVars(vars);
      // Map constraint variables back to their attribute positions in this
      // rule's atoms.
      auto add_positions = [&](const Atom& atom) {
        for (size_t i = 0; i < atom.args.size(); ++i) {
          if (!atom.args[i].is_var()) continue;
          if (std::find(vars.begin(), vars.end(), atom.args[i].var) !=
              vars.end()) {
            targets.constrained.insert(AttrNode{atom.relation, i});
          }
        }
      };
      for (const Atom& atom : rule.atoms) add_positions(atom);
      add_positions(rule.head);
    }
  }
  return targets;
}

}  // namespace

bool EquivalenceKeys::Contains(size_t index) const {
  return std::binary_search(indices_.begin(), indices_.end(), index);
}

Status EquivalenceKeys::ValidateEvent(const Tuple& event) const {
  if (event.relation() != event_relation_) {
    return Status::InvalidArgument(
        "equivalence keys are defined over relation " + event_relation_ +
        ", got a tuple of " + event.relation());
  }
  for (size_t i : indices_) {
    if (i >= event.arity()) {
      return Status::InvalidArgument(
          "event " + event.ToString() + " has arity " +
          std::to_string(event.arity()) + " but equivalence key index " +
          std::to_string(i) + " requires at least " + std::to_string(i + 1) +
          " attributes");
    }
  }
  return Status::OK();
}

Sha1Digest EquivalenceKeys::HashOf(const Tuple& event) const {
  DPC_DCHECK(event.relation() == event_relation_)
      << "expected " << event_relation_ << ", got " << event.relation();
  ByteWriter w;
  w.PutString(event_relation_);
  for (size_t i : indices_) {
    // Arity-mismatched events are rejected by ValidateEvent at ingest;
    // skipping (rather than aborting) keeps a stale caller from taking the
    // node down with it.
    if (i >= event.arity()) continue;
    event.at(i).Serialize(w);
  }
  return Sha1::Hash(w.bytes().data(), w.size());
}

Result<Sha1Digest> EquivalenceKeys::CheckedHashOf(const Tuple& event) const {
  DPC_RETURN_NOT_OK(ValidateEvent(event));
  return HashOf(event);
}

bool EquivalenceKeys::Equivalent(const Tuple& a, const Tuple& b) const {
  if (a.relation() != event_relation_ || b.relation() != event_relation_) {
    return false;
  }
  for (size_t i : indices_) {
    if (i >= a.arity() || i >= b.arity()) {
      return i >= a.arity() && i >= b.arity();
    }
    if (a.at(i) != b.at(i)) return false;
  }
  return true;
}

std::string EquivalenceKeys::ToString() const {
  std::string out = "(";
  for (size_t k = 0; k < indices_.size(); ++k) {
    if (k > 0) out += ", ";
    out += event_relation_ + ":" + std::to_string(indices_[k]);
  }
  out += ")";
  return out;
}

Result<EquivalenceKeys> ComputeEquivalenceKeys(const Program& program) {
  DependencyGraph graph = DependencyGraph::Build(program);
  return ComputeEquivalenceKeys(program, graph);
}

Result<EquivalenceKeys> ComputeEquivalenceKeys(const Program& program,
                                               const DependencyGraph& graph) {
  EquivalenceKeys keys;
  keys.event_relation_ = program.input_event_relation();

  std::set<AttrNode> targets = CollectKeyTargets(program, graph).All();

  // The event relation's arity: take it from r1's event atom.
  const Atom& ev_atom = program.rules().front().EventAtom();
  for (size_t i = 0; i < ev_atom.args.size(); ++i) {
    AttrNode node{keys.event_relation_, i};
    if (i == 0) {
      // The input location always participates (GetEquiKeys line 3): no two
      // events injected at different nodes may share an equivalence class.
      keys.indices_.push_back(i);
      continue;
    }
    std::set<AttrNode> reach = graph.ReachableSet(node);
    bool is_key = false;
    for (const AttrNode& r : reach) {
      if (targets.count(r) > 0) {
        is_key = true;
        break;
      }
    }
    if (is_key) keys.indices_.push_back(i);
  }
  return keys;
}

const char* KeyReasonName(KeyReason reason) {
  switch (reason) {
    case KeyReason::kLocation: return "location-specifier";
    case KeyReason::kReachesSlowChanging: return "reaches-slow-changing";
    case KeyReason::kReachesConstraint: return "reaches-constraint";
    case KeyReason::kUnreachable: return "unreachable";
  }
  return "?";
}

std::string KeyExplanation::ToString() const {
  std::string out = attr.ToString();
  if (!var.empty()) out += " (" + var + ")";
  out += is_key ? ": key, " : ": not a key, ";
  out += KeyReasonName(reason);
  if (!chain.empty()) {
    out += " via ";
    for (size_t i = 0; i < chain.size(); ++i) {
      if (i > 0) out += " -> ";
      out += chain[i].ToString();
    }
  }
  return out;
}

Result<std::vector<KeyExplanation>> ExplainEquivalenceKeys(
    const Program& program) {
  DependencyGraph graph = DependencyGraph::Build(program);
  return ExplainEquivalenceKeys(program, graph);
}

Result<std::vector<KeyExplanation>> ExplainEquivalenceKeys(
    const Program& program, const DependencyGraph& graph) {
  KeyTargets targets = CollectKeyTargets(program, graph);

  std::vector<KeyExplanation> out;
  const Atom& ev_atom = program.rules().front().EventAtom();
  for (size_t i = 0; i < ev_atom.args.size(); ++i) {
    KeyExplanation ex;
    ex.attr = AttrNode{program.input_event_relation(), i};
    if (ev_atom.args[i].is_var()) ex.var = ev_atom.args[i].var;
    if (i == 0) {
      ex.is_key = true;
      ex.reason = KeyReason::kLocation;
      out.push_back(std::move(ex));
      continue;
    }
    // Prefer a slow-changing witness: it is the paper's primary
    // key-forcing condition; the constraint form is the conservative
    // strengthening.
    std::vector<AttrNode> path =
        graph.ShortestPathToAny(ex.attr, targets.slow);
    if (!path.empty()) {
      ex.is_key = true;
      ex.reason = KeyReason::kReachesSlowChanging;
      ex.chain = std::move(path);
    } else {
      path = graph.ShortestPathToAny(ex.attr, targets.constrained);
      if (!path.empty()) {
        ex.is_key = true;
        ex.reason = KeyReason::kReachesConstraint;
        ex.chain = std::move(path);
      }
    }
    out.push_back(std::move(ex));
  }
  return out;
}

}  // namespace dpc
