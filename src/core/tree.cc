#include "src/core/tree.h"

#include "src/util/logging.h"

namespace dpc {

const Tuple& ProvTree::Output() const {
  DPC_CHECK(!steps_.empty());
  return steps_.back().head;
}

bool ProvTree::EquivalentTo(const ProvTree& other) const {
  if (steps_.size() != other.steps_.size()) return false;
  for (size_t i = 0; i < steps_.size(); ++i) {
    if (steps_[i].rule_id != other.steps_[i].rule_id) return false;
    if (steps_[i].slow_tuples != other.steps_[i].slow_tuples) return false;
  }
  return true;
}

void ProvTree::Serialize(ByteWriter& w) const {
  event_.Serialize(w);
  w.PutVarint(steps_.size());
  for (const ProvStep& s : steps_) {
    w.PutString(s.rule_id);
    s.head.Serialize(w);
    w.PutVarint(s.slow_tuples.size());
    for (const Tuple& t : s.slow_tuples) t.Serialize(w);
  }
}

Result<ProvTree> ProvTree::Deserialize(ByteReader& r) {
  DPC_ASSIGN_OR_RETURN(Tuple event, Tuple::Deserialize(r));
  DPC_ASSIGN_OR_RETURN(uint64_t nsteps, r.GetVarint());
  std::vector<ProvStep> steps;
  steps.reserve(nsteps);
  for (uint64_t i = 0; i < nsteps; ++i) {
    ProvStep step;
    DPC_ASSIGN_OR_RETURN(step.rule_id, r.GetString());
    DPC_ASSIGN_OR_RETURN(step.head, Tuple::Deserialize(r));
    DPC_ASSIGN_OR_RETURN(uint64_t nslow, r.GetVarint());
    step.slow_tuples.reserve(nslow);
    for (uint64_t j = 0; j < nslow; ++j) {
      DPC_ASSIGN_OR_RETURN(Tuple t, Tuple::Deserialize(r));
      step.slow_tuples.push_back(std::move(t));
    }
    steps.push_back(std::move(step));
  }
  return ProvTree(std::move(event), std::move(steps));
}

size_t ProvTree::SerializedSize() const {
  ByteWriter w;
  Serialize(w);
  return w.size();
}

std::string ProvTree::ToString() const {
  // Render from the root downwards.
  std::string out;
  std::string indent;
  for (size_t i = steps_.size(); i-- > 0;) {
    const ProvStep& s = steps_[i];
    // A rule executes at the location of the tuple that triggered it.
    NodeId rule_loc =
        (i == 0 ? event_ : steps_[i - 1].head).Location();
    out += indent + "[" + s.head.ToString() + "]\n";
    out += indent + "  (" + s.rule_id + "@n" + std::to_string(rule_loc) +
           ")";
    for (const Tuple& t : s.slow_tuples) {
      out += "  [" + t.ToString() + "]";
    }
    out += "\n";
    indent += "    ";
  }
  out += indent + "[" + event_.ToString() + "]\n";
  return out;
}

namespace {

// DOT string literal escaping for tuple payloads.
std::string DotEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == '"' || c == '\\') out.push_back('\\');
    out.push_back(c);
  }
  return out;
}

}  // namespace

std::string ProvTree::ToDot(const std::string& graph_name) const {
  std::string out = "digraph " + graph_name + " {\n";
  out += "  rankdir=BT;\n";
  out += "  node [fontsize=10];\n";
  // Tuple nodes: the event, every head, and every slow-changing tuple.
  out += "  ev [shape=box, label=\"" + DotEscape(event_.ToString()) +
         "\"];\n";
  std::string prev = "ev";
  for (size_t i = 0; i < steps_.size(); ++i) {
    const ProvStep& s = steps_[i];
    NodeId rule_loc = (i == 0 ? event_ : steps_[i - 1].head).Location();
    std::string rule_node = "r" + std::to_string(i);
    std::string head_node = "t" + std::to_string(i);
    out += "  " + rule_node + " [shape=ellipse, label=\"" + s.rule_id +
           "@n" + std::to_string(rule_loc) + "\"];\n";
    out += "  " + head_node + " [shape=box, label=\"" +
           DotEscape(s.head.ToString()) + "\"];\n";
    out += "  " + prev + " -> " + rule_node + ";\n";
    for (size_t j = 0; j < s.slow_tuples.size(); ++j) {
      std::string slow_node =
          "s" + std::to_string(i) + "_" + std::to_string(j);
      out += "  " + slow_node + " [shape=box, label=\"" +
             DotEscape(s.slow_tuples[j].ToString()) + "\"];\n";
      out += "  " + slow_node + " -> " + rule_node + ";\n";
    }
    out += "  " + rule_node + " -> " + head_node + ";\n";
    prev = head_node;
  }
  out += "}\n";
  return out;
}

}  // namespace dpc
