// Table: an in-memory relation instance with set semantics and stable
// iteration order. A digest index provides O(1) duplicate detection and
// deletion; in addition, lazily-built hash indexes over planner-chosen
// column signatures let rule evaluation probe matching tuples instead of
// scanning the whole relation (src/analysis/planner.h derives the
// signatures; src/runtime wires them into the hot path).
//
// Rows are stored as shared-immutable TupleRefs: evaluation hands the same
// allocation (with its memoized VID/size/hash) to every rule firing and
// recorder that joins the row, instead of copying the tuple per candidate.
// Join-index buckets key on the cheap 64-bit FNV content hash — probing an
// index never runs SHA-1; the main digest index keeps the SHA-1 VID (which
// the row's tuple memoizes) as its collision-free identity.
#ifndef DPC_DB_TABLE_H_
#define DPC_DB_TABLE_H_

#include <map>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "src/db/tuple.h"

namespace dpc {

// A hash-index key shape: the sorted column positions whose values the
// index groups by. Derived statically per slow-changing relation by the
// rule planner from the bound columns of each join probe.
using IndexSignature = std::vector<size_t>;

// "[c0,c1,...]", e.g. "[0,2]".
std::string IndexSignatureToString(const IndexSignature& sig);

class Table {
 public:
  explicit Table(std::string name) : name_(std::move(name)) {}

  const std::string& name() const { return name_; }

  // Inserts `t`; returns false if an equal tuple was already present.
  // The TupleRef overload shares the caller's allocation (no copy); the
  // Tuple overload allocates only when the tuple is actually new.
  bool Insert(const Tuple& t);
  bool Insert(TupleRef t);

  // Removes `t`; returns false if it was not present.
  bool Erase(const Tuple& t);

  bool Contains(const Tuple& t) const;

  // Live tuples, in insertion order.
  std::vector<Tuple> Snapshot() const;

  // Applies `fn` to each live tuple; `fn` returns false to stop early.
  template <typename Fn>
  void ForEach(Fn&& fn) const {
    for (const auto& slot : rows_) {
      if (!slot.live) continue;
      if (!fn(*slot.tuple)) return;
    }
  }

  // As ForEach, but hands out the shared row handle so callers (the join
  // loops) can retain the tuple without copying it.
  template <typename Fn>
  void ForEachRef(Fn&& fn) const {
    for (const auto& slot : rows_) {
      if (!slot.live) continue;
      if (!fn(slot.tuple)) return;
    }
  }

  // Applies `fn` (in insertion order) to each live tuple whose values at
  // `sig`'s columns equal `key` (aligned with `sig`, which must be sorted
  // and non-empty); `fn` returns false to stop early. The first probe of a
  // signature builds a hash index over it; the index is maintained
  // incrementally by Insert/Erase thereafter. Buckets key on a 64-bit
  // content hash, so callers must verify candidates (which full
  // unification does anyway).
  template <typename Fn>
  void ForEachMatch(const IndexSignature& sig, const std::vector<Value>& key,
                    Fn&& fn) const {
    ForEachMatchRef(sig, key,
                    [&](const TupleRef& t) { return fn(*t); });
  }

  // As ForEachMatch, handing out the shared row handle.
  template <typename Fn>
  void ForEachMatchRef(const IndexSignature& sig,
                       const std::vector<Value>& key, Fn&& fn) const {
    const std::vector<size_t>* bucket = ProbeBucket(sig, key);
    if (bucket == nullptr) return;
    for (size_t row : *bucket) {
      const Slot& slot = rows_[row];
      if (!slot.live) continue;
      if (!fn(slot.tuple)) return;
    }
  }

  // One signature's lazily built hash index. Opaque to callers: obtain
  // with IndexFor, probe with CollectFromIndex. Handles are stable across
  // Insert/Erase (the index map's nodes never move and buckets are
  // maintained incrementally); only table destruction invalidates them.
  struct HashIndex {
    std::unordered_map<uint64_t, std::vector<size_t>> buckets;
  };

  // Resolves (building on first use) the index over `sig`, so repeated
  // probes skip the per-probe signature lookup. The batch evaluator
  // resolves each plan step's index once per batch.
  const HashIndex& IndexFor(const IndexSignature& sig) const;

  // Appends (in insertion order) the shared row handles of the live
  // tuples in `key_hash`'s bucket of `index` (which must belong to this
  // table). `key_hash` must have been produced the way KeyHashOf does
  // (each key value's HashInto, in column order); buckets key on that
  // hash alone, so callers must verify candidates by full unification as
  // with ForEachMatchRef.
  void CollectFromIndex(const HashIndex& index, uint64_t key_hash,
                        std::vector<const TupleRef*>& out) const;

  // IndexFor + CollectFromIndex in one call, for single probes.
  void CollectMatchRefs(const IndexSignature& sig, uint64_t key_hash,
                        std::vector<const TupleRef*>& out) const;

  // FNV-1a over `key`'s values, matching the per-tuple hash the index
  // buckets key on. Public so batch callers can hash once and probe many.
  static uint64_t KeyHashOf(const std::vector<Value>& key);

  size_t size() const { return live_count_; }
  bool empty() const { return live_count_ == 0; }

  // Number of signature indexes built so far (observability/tests).
  size_t num_indexes() const { return indexes_.size(); }

  void Serialize(ByteWriter& w) const;
  // O(1): name + count framing plus the incrementally maintained sum of
  // live tuples' (memoized) serialized sizes.
  size_t SerializedSize() const;

 private:
  struct Slot {
    TupleRef tuple;
    bool live;
  };

  // FNV-1a over the tuple's values at `sig`'s columns (out-of-range
  // columns are skipped; unification re-checks arity anyway).
  static uint64_t KeyHashOf(const IndexSignature& sig, const Tuple& t);

  // Returns the bucket for `key` in the (lazily built) index over `sig`;
  // nullptr when no tuple matches.
  const std::vector<size_t>* ProbeBucket(const IndexSignature& sig,
                                         const std::vector<Value>& key) const;
  const std::vector<size_t>* ProbeBucketByHash(const IndexSignature& sig,
                                               uint64_t key_hash) const;

  // Shared insert body; `make_ref` is invoked only when the tuple is new.
  template <typename MakeRef>
  bool InsertImpl(const Tuple& t, MakeRef&& make_ref) {
    const Sha1Digest& vid = t.Vid();
    auto it = index_.find(vid);
    if (it != index_.end()) {
      Slot& slot = rows_[it->second];
      if (slot.live) return false;
      slot.live = true;
      ++live_count_;
      live_bytes_ += slot.tuple->SerializedSize();
      return true;
    }
    TupleRef ref = make_ref();
    index_.emplace(vid, rows_.size());
    for (auto& [sig, hash_index] : indexes_) {
      hash_index.buckets[KeyHashOf(sig, *ref)].push_back(rows_.size());
    }
    live_bytes_ += ref->SerializedSize();
    rows_.push_back(Slot{std::move(ref), true});
    ++live_count_;
    return true;
  }

  std::string name_;
  std::vector<Slot> rows_;
  // Tuple digest -> index into rows_.
  std::unordered_map<Sha1Digest, size_t, Sha1DigestHash> index_;
  size_t live_count_ = 0;
  // Sum of live tuples' serialized sizes, maintained by Insert/Erase.
  size_t live_bytes_ = 0;
  // Signature -> hash index, built on first probe (mutable: probing is
  // logically const). std::map keeps diagnostics deterministic.
  mutable std::map<IndexSignature, HashIndex> indexes_;
};

// Database: the per-node collection of tables, keyed by relation name.
class Database {
 public:
  // Returns the table for `relation`, creating it if absent.
  Table& GetOrCreate(const std::string& relation);

  // Returns nullptr if the relation has no table yet.
  const Table* Find(const std::string& relation) const;
  Table* Find(const std::string& relation);

  bool Insert(const Tuple& t) { return GetOrCreate(t.relation()).Insert(t); }
  bool Insert(TupleRef t) {
    return GetOrCreate(t->relation()).Insert(std::move(t));
  }
  bool Erase(const Tuple& t);
  bool Contains(const Tuple& t) const;

  std::vector<std::string> RelationNames() const;

  size_t TotalTuples() const;

 private:
  std::unordered_map<std::string, Table> tables_;
};

}  // namespace dpc

#endif  // DPC_DB_TABLE_H_
