// Table: an in-memory relation instance with set semantics and stable
// iteration order. Per-node databases are small (route entries, name-server
// delegations), so matching scans linearly; a digest index provides O(1)
// duplicate detection and deletion.
#ifndef DPC_DB_TABLE_H_
#define DPC_DB_TABLE_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "src/db/tuple.h"

namespace dpc {

class Table {
 public:
  explicit Table(std::string name) : name_(std::move(name)) {}

  const std::string& name() const { return name_; }

  // Inserts `t`; returns false if an equal tuple was already present.
  bool Insert(const Tuple& t);

  // Removes `t`; returns false if it was not present.
  bool Erase(const Tuple& t);

  bool Contains(const Tuple& t) const;

  // Live tuples, in insertion order.
  std::vector<Tuple> Snapshot() const;

  // Applies `fn` to each live tuple; `fn` returns false to stop early.
  template <typename Fn>
  void ForEach(Fn&& fn) const {
    for (const auto& slot : rows_) {
      if (!slot.live) continue;
      if (!fn(slot.tuple)) return;
    }
  }

  size_t size() const { return live_count_; }
  bool empty() const { return live_count_ == 0; }

  void Serialize(ByteWriter& w) const;
  size_t SerializedSize() const;

 private:
  struct Slot {
    Tuple tuple;
    bool live;
  };

  std::string name_;
  std::vector<Slot> rows_;
  // Tuple digest -> index into rows_.
  std::unordered_map<Sha1Digest, size_t, Sha1DigestHash> index_;
  size_t live_count_ = 0;
};

// Database: the per-node collection of tables, keyed by relation name.
class Database {
 public:
  // Returns the table for `relation`, creating it if absent.
  Table& GetOrCreate(const std::string& relation);

  // Returns nullptr if the relation has no table yet.
  const Table* Find(const std::string& relation) const;
  Table* Find(const std::string& relation);

  bool Insert(const Tuple& t) { return GetOrCreate(t.relation()).Insert(t); }
  bool Erase(const Tuple& t);
  bool Contains(const Tuple& t) const;

  std::vector<std::string> RelationNames() const;

  size_t TotalTuples() const;

 private:
  std::unordered_map<std::string, Table> tables_;
};

}  // namespace dpc

#endif  // DPC_DB_TABLE_H_
