// TupleInterner: an optional per-node/per-runtime pool of shared-immutable
// tuples. Interning a tuple whose content is already pooled returns the
// existing TupleRef — with its memoized VID/size/hash — instead of a fresh
// allocation, so repeatedly delivered identical tuples are hashed and
// measured once. Lookup keys on the cheap 64-bit content hash and verifies
// candidates by full equality, so digest collisions cannot conflate tuples.
//
// The pool is bounded: when it reaches `max_entries` live contents it is
// flushed wholesale (epoch clear). Outstanding TupleRefs stay valid — the
// pool only drops its own references — so a flush costs future sharing,
// never correctness.
#ifndef DPC_DB_INTERN_H_
#define DPC_DB_INTERN_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "src/db/tuple.h"

namespace dpc {

class TupleInterner {
 public:
  static constexpr size_t kDefaultMaxEntries = 1 << 16;

  explicit TupleInterner(size_t max_entries = kDefaultMaxEntries)
      : max_entries_(max_entries == 0 ? 1 : max_entries) {}

  // Returns the pooled ref for `t`'s content, pooling it if new.
  TupleRef Intern(Tuple t);
  // As above without consuming the caller's tuple (copies only when new).
  TupleRef Intern(const TupleRef& t);

  size_t size() const { return count_; }
  // Intern calls answered by an already-pooled tuple.
  uint64_t hits() const { return hits_; }
  // Number of wholesale evictions triggered by the size bound.
  uint64_t flushes() const { return flushes_; }

  void Clear();

 private:
  TupleRef* FindPooled(const Tuple& t);
  void Pool(TupleRef ref);

  size_t max_entries_;
  // Content hash -> pooled tuples with that hash (collision chain).
  std::unordered_map<uint64_t, std::vector<TupleRef>> pool_;
  size_t count_ = 0;
  uint64_t hits_ = 0;
  uint64_t flushes_ = 0;
};

}  // namespace dpc

#endif  // DPC_DB_INTERN_H_
