// TupleInterner: an optional per-node/per-runtime pool of shared-immutable
// tuples. Interning a tuple whose content is already pooled returns the
// existing TupleRef — with its memoized VID/size/hash — instead of a fresh
// allocation, so repeatedly delivered identical tuples are hashed and
// measured once. Lookup keys on the cheap 64-bit content hash and verifies
// candidates by full equality, so digest collisions cannot conflate tuples.
//
// The pool is bounded: when it reaches `max_entries` live contents it is
// flushed wholesale (epoch clear). Outstanding TupleRefs stay valid — the
// pool only drops its own references — so a flush costs future sharing,
// never correctness.
//
// Thread-safe: the pool is guarded by an internal mutex, so shard workers
// interning concurrently (same or different contents) always get refs
// whose contents equal what they passed in.
#ifndef DPC_DB_INTERN_H_
#define DPC_DB_INTERN_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "src/db/tuple.h"
#include "src/util/thread_annotations.h"

namespace dpc {

class TupleInterner {
 public:
  static constexpr size_t kDefaultMaxEntries = 1 << 16;

  explicit TupleInterner(size_t max_entries = kDefaultMaxEntries)
      : max_entries_(max_entries == 0 ? 1 : max_entries) {}

  // Returns the pooled ref for `t`'s content, pooling it if new.
  TupleRef Intern(Tuple t) DPC_EXCLUDES(mu_);
  // As above without consuming the caller's tuple (copies only when new).
  TupleRef Intern(const TupleRef& t) DPC_EXCLUDES(mu_);

  size_t size() const DPC_EXCLUDES(mu_) {
    MutexLock lock(mu_);
    return count_;
  }
  // Intern calls answered by an already-pooled tuple.
  uint64_t hits() const DPC_EXCLUDES(mu_) {
    MutexLock lock(mu_);
    return hits_;
  }
  // Number of wholesale evictions triggered by the size bound.
  uint64_t flushes() const DPC_EXCLUDES(mu_) {
    MutexLock lock(mu_);
    return flushes_;
  }

  void Clear() DPC_EXCLUDES(mu_);

 private:
  TupleRef* FindPooled(const Tuple& t) DPC_REQUIRES(mu_);
  void Pool(TupleRef ref) DPC_REQUIRES(mu_);

  mutable Mutex mu_;
  size_t max_entries_;
  // Content hash -> pooled tuples with that hash (collision chain).
  std::unordered_map<uint64_t, std::vector<TupleRef>> pool_
      DPC_GUARDED_BY(mu_);
  size_t count_ DPC_GUARDED_BY(mu_) = 0;
  uint64_t hits_ DPC_GUARDED_BY(mu_) = 0;
  uint64_t flushes_ DPC_GUARDED_BY(mu_) = 0;
};

}  // namespace dpc

#endif  // DPC_DB_INTERN_H_
