// Tuple: an instance of an NDlog relation. By NDlog convention the first
// attribute carries the location specifier ("@" attribute): the node id at
// which the tuple lives.
//
// Tuples are immutable after construction (relation and values are only
// reachable as const), which lets every identity — the SHA-1 VID, the
// serialized size, and the 64-bit container hash — be computed lazily once
// and memoized with no invalidation. The caches are copied along with the
// tuple, so a tuple that flows through tables, stores and recorders pays
// for each identity at most once per allocation; share a TupleRef to pay
// at most once per *content*.
//
// Concurrency: the memo fields are atomically published, so many threads
// may race a first-touch Vid()/Hash64()/SerializedSize() on one shared
// TupleRef (the sharded runtime will). Size and hash are plain atomic
// cells — racing computers store the same deterministic value. The VID is
// 20 bytes and cannot be stored atomically, so a single computer claims it
// by CAS and publishes with a release store; late arrivals briefly spin on
// the ready flag (one SHA-1 over a small buffer) instead of recomputing.
// The warm-read fast path is one acquire load and a branch — a plain load
// on x86/ARM load-acquire, so the memoization stays free of lock prefixes.
#ifndef DPC_DB_TUPLE_H_
#define DPC_DB_TUPLE_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "src/db/value.h"
#include "src/util/hash.h"
#include "src/util/result.h"
#include "src/util/sha1.h"
#include "src/util/serial.h"

namespace dpc {

// Node identifier within the simulated distributed system.
using NodeId = int32_t;
inline constexpr NodeId kNullNode = -1;

class Tuple {
 public:
  Tuple() = default;
  Tuple(std::string relation, std::vector<Value> values)
      : relation_(std::move(relation)), values_(std::move(values)) {}

  // Convenience constructor: location + remaining attributes.
  static Tuple Make(std::string relation, NodeId loc,
                    std::vector<Value> rest);

  const std::string& relation() const { return relation_; }
  const std::vector<Value>& values() const { return values_; }
  size_t arity() const { return values_.size(); }
  const Value& at(size_t i) const { return values_[i]; }

  // Location specifier: the first attribute, which must be an integer node
  // id for any tuple that participates in distributed execution.
  // Location() DPC_CHECKs that invariant — it is for tuples the program
  // built itself. Tuples decoded from network bytes are untrusted:
  // validate with HasValidLocation() first (see System::HandleMessage),
  // so malformed peer input fails with a Status instead of aborting.
  NodeId Location() const;
  bool HasValidLocation() const {
    return !values_.empty() && values_[0].is_int();
  }

  // Content equality/ordering over (relation, values); the memoized
  // identity caches never participate. The cached 64-bit hashes fast-path
  // inequality when both sides are warm (acquire loads pair with the
  // release publish in Hash64, so an observed ready flag guarantees the
  // hash value is the real one).
  bool operator==(const Tuple& other) const {
    if (id_.hash_ready.load(std::memory_order_acquire) != 0 &&
        other.id_.hash_ready.load(std::memory_order_acquire) != 0 &&
        id_.hash64.load(std::memory_order_relaxed) !=
            other.id_.hash64.load(std::memory_order_relaxed)) {
      return false;
    }
    return relation_ == other.relation_ && values_ == other.values_;
  }
  auto operator<=>(const Tuple& other) const {
    if (auto c = relation_ <=> other.relation_; c != 0) return c;
    return values_ <=> other.values_;
  }

  // VID in the paper's storage model: sha1 over the canonical encoding.
  // Memoized: SHA-1 runs once per tuple object, ever.
  const Sha1Digest& Vid() const;

  // Cheap non-cryptographic 64-bit hash (FNV-1a over the canonical
  // encoding) for unordered containers and join-index buckets; memoized.
  // Never serialized — in-memory identity only.
  uint64_t Hash64() const;

  void Serialize(ByteWriter& w) const;
  static Result<Tuple> Deserialize(ByteReader& r);
  // Arithmetic (no buffer materialized) and memoized; always equals the
  // byte count Serialize appends.
  size_t SerializedSize() const;

  // e.g. packet(@1, 1, 3, "data")
  std::string ToString() const;

 private:
  // vid_state values: the 20-byte digest is published by a single winner.
  static constexpr uint8_t kVidEmpty = 0;
  static constexpr uint8_t kVidBusy = 1;
  static constexpr uint8_t kVidReady = 2;

  // Lazily filled identity memo. Mutable because identity computation is
  // logically const; safe because tuples are immutable after construction
  // and every field is atomically published (see the header comment).
  // Copying snapshots whatever the source has published; atomics are not
  // copyable, hence the hand-written copy operations (moves degrade to
  // copies, which is fine — the memo is 40-odd bytes).
  struct Identity {
    Sha1Digest vid{};
    // 0 means "not computed": a real serialized size is always >= 2
    // (one length byte for the relation name, one varint for the arity).
    std::atomic<size_t> size{0};
    std::atomic<uint64_t> hash64{0};
    std::atomic<uint8_t> hash_ready{0};
    std::atomic<uint8_t> vid_state{kVidEmpty};

    Identity() = default;
    Identity(const Identity& o) { *this = o; }
    Identity& operator=(const Identity& o) {
      size.store(o.size.load(std::memory_order_relaxed),
                 std::memory_order_relaxed);
      if (o.hash_ready.load(std::memory_order_acquire) != 0) {
        hash64.store(o.hash64.load(std::memory_order_relaxed),
                     std::memory_order_relaxed);
        hash_ready.store(1, std::memory_order_relaxed);
      } else {
        hash_ready.store(0, std::memory_order_relaxed);
      }
      if (o.vid_state.load(std::memory_order_acquire) == kVidReady) {
        vid = o.vid;
        vid_state.store(kVidReady, std::memory_order_relaxed);
      } else {
        vid_state.store(kVidEmpty, std::memory_order_relaxed);
      }
      return *this;
    }
  };

  std::string relation_;
  std::vector<Value> values_;
  mutable Identity id_;
};

// Shared-immutable tuple handle. The provenance hot path threads one
// allocation through Table rows, rule firings, recorder stores and message
// construction, so a tuple delivered to N consumers is serialized and
// hashed once, not N times.
using TupleRef = std::shared_ptr<const Tuple>;

inline TupleRef MakeTupleRef(Tuple t) {
  return std::make_shared<const Tuple>(std::move(t));
}

// Hash functor over the canonical encoding, for unordered containers.
// FNV-1a based: probing a container never runs SHA-1.
struct TupleHash {
  size_t operator()(const Tuple& t) const {
    return static_cast<size_t>(t.Hash64());
  }
};

}  // namespace dpc

#endif  // DPC_DB_TUPLE_H_
