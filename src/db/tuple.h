// Tuple: an instance of an NDlog relation. By NDlog convention the first
// attribute carries the location specifier ("@" attribute): the node id at
// which the tuple lives.
#ifndef DPC_DB_TUPLE_H_
#define DPC_DB_TUPLE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/db/value.h"
#include "src/util/result.h"
#include "src/util/sha1.h"
#include "src/util/serial.h"

namespace dpc {

// Node identifier within the simulated distributed system.
using NodeId = int32_t;
inline constexpr NodeId kNullNode = -1;

class Tuple {
 public:
  Tuple() = default;
  Tuple(std::string relation, std::vector<Value> values)
      : relation_(std::move(relation)), values_(std::move(values)) {}

  // Convenience constructor: location + remaining attributes.
  static Tuple Make(std::string relation, NodeId loc,
                    std::vector<Value> rest);

  const std::string& relation() const { return relation_; }
  const std::vector<Value>& values() const { return values_; }
  size_t arity() const { return values_.size(); }
  const Value& at(size_t i) const { return values_[i]; }

  // Location specifier: the first attribute, which must be an integer node
  // id for any tuple that participates in distributed execution.
  NodeId Location() const;

  bool operator==(const Tuple& other) const = default;
  auto operator<=>(const Tuple& other) const = default;

  // VID in the paper's storage model: sha1 over the canonical encoding.
  Sha1Digest Vid() const;

  void Serialize(ByteWriter& w) const;
  static Result<Tuple> Deserialize(ByteReader& r);
  size_t SerializedSize() const;

  // e.g. packet(@1, 1, 3, "data")
  std::string ToString() const;

 private:
  std::string relation_;
  std::vector<Value> values_;
};

// Hash functor over the canonical encoding, for unordered containers.
struct TupleHash {
  size_t operator()(const Tuple& t) const {
    return static_cast<size_t>(t.Vid().Prefix64());
  }
};

}  // namespace dpc

#endif  // DPC_DB_TUPLE_H_
