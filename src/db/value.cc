#include "src/db/value.h"

namespace dpc {

bool Value::Truthy() const {
  if (is_int()) return AsInt() != 0;
  return !AsString().empty();
}

void Value::Serialize(ByteWriter& w) const {
  w.PutU8(static_cast<uint8_t>(kind()));
  if (is_int()) {
    w.PutVarintSigned(AsInt());
  } else {
    w.PutString(AsString());
  }
}

Result<Value> Value::Deserialize(ByteReader& r) {
  DPC_ASSIGN_OR_RETURN(uint8_t tag, r.GetU8());
  switch (static_cast<Kind>(tag)) {
    case Kind::kInt: {
      DPC_ASSIGN_OR_RETURN(int64_t v, r.GetVarintSigned());
      return Value::Int(v);
    }
    case Kind::kString: {
      DPC_ASSIGN_OR_RETURN(std::string s, r.GetString());
      return Value::Str(std::move(s));
    }
  }
  return Status::ParseError("bad Value kind tag");
}

size_t Value::SerializedSize() const {
  if (is_int()) return 1 + VarintSignedSize(AsInt());
  return 1 + StringSerializedSize(AsString());
}

void Value::HashInto(Fnv1a& h) const {
  h.PutByte(static_cast<uint8_t>(kind()));
  if (is_int()) {
    h.PutVarintSigned(AsInt());
  } else {
    h.PutString(AsString());
  }
}

std::string Value::ToString() const {
  if (is_int()) return std::to_string(AsInt());
  return "\"" + AsString() + "\"";
}

}  // namespace dpc
