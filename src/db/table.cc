#include "src/db/table.h"

#include <algorithm>

namespace dpc {

std::string IndexSignatureToString(const IndexSignature& sig) {
  std::string out = "[";
  for (size_t i = 0; i < sig.size(); ++i) {
    if (i > 0) out += ",";
    out += std::to_string(sig[i]);
  }
  out += "]";
  return out;
}

uint64_t Table::KeyHashOf(const IndexSignature& sig, const Tuple& t) {
  Fnv1a h;
  for (size_t col : sig) {
    if (col >= t.arity()) continue;
    t.at(col).HashInto(h);
  }
  return h.hash();
}

uint64_t Table::KeyHashOf(const std::vector<Value>& key) {
  Fnv1a h;
  for (const Value& v : key) v.HashInto(h);
  return h.hash();
}

const Table::HashIndex& Table::IndexFor(const IndexSignature& sig) const {
  auto it = indexes_.find(sig);
  if (it == indexes_.end()) {
    // First probe of this signature: index every slot, dead ones included,
    // so buckets stay correct when an erased tuple is re-inserted (its
    // slot is revived in place and never re-indexed).
    HashIndex index;
    for (size_t row = 0; row < rows_.size(); ++row) {
      index.buckets[KeyHashOf(sig, *rows_[row].tuple)].push_back(row);
    }
    it = indexes_.emplace(sig, std::move(index)).first;
  }
  return it->second;
}

const std::vector<size_t>* Table::ProbeBucketByHash(const IndexSignature& sig,
                                                    uint64_t key_hash) const {
  const HashIndex& index = IndexFor(sig);
  auto bucket = index.buckets.find(key_hash);
  return bucket == index.buckets.end() ? nullptr : &bucket->second;
}

const std::vector<size_t>* Table::ProbeBucket(
    const IndexSignature& sig, const std::vector<Value>& key) const {
  return ProbeBucketByHash(sig, KeyHashOf(key));
}

void Table::CollectFromIndex(const HashIndex& index, uint64_t key_hash,
                             std::vector<const TupleRef*>& out) const {
  auto it = index.buckets.find(key_hash);
  if (it == index.buckets.end()) return;
  for (size_t row : it->second) {
    const Slot& slot = rows_[row];
    if (slot.live) out.push_back(&slot.tuple);
  }
}

void Table::CollectMatchRefs(const IndexSignature& sig, uint64_t key_hash,
                             std::vector<const TupleRef*>& out) const {
  CollectFromIndex(IndexFor(sig), key_hash, out);
}

bool Table::Insert(const Tuple& t) {
  return InsertImpl(t, [&] { return MakeTupleRef(t); });
}

bool Table::Insert(TupleRef t) {
  return InsertImpl(*t, [&] { return std::move(t); });
}

bool Table::Erase(const Tuple& t) {
  auto it = index_.find(t.Vid());
  if (it == index_.end() || !rows_[it->second].live) return false;
  Slot& slot = rows_[it->second];
  slot.live = false;
  --live_count_;
  live_bytes_ -= slot.tuple->SerializedSize();
  return true;
}

bool Table::Contains(const Tuple& t) const {
  auto it = index_.find(t.Vid());
  return it != index_.end() && rows_[it->second].live;
}

std::vector<Tuple> Table::Snapshot() const {
  std::vector<Tuple> out;
  out.reserve(live_count_);
  for (const auto& slot : rows_) {
    if (slot.live) out.push_back(*slot.tuple);
  }
  return out;
}

void Table::Serialize(ByteWriter& w) const {
  w.PutString(name_);
  w.PutVarint(live_count_);
  w.Reserve(live_bytes_);
  for (const auto& slot : rows_) {
    if (slot.live) slot.tuple->Serialize(w);
  }
}

size_t Table::SerializedSize() const {
  return StringSerializedSize(name_) + VarintSize(live_count_) + live_bytes_;
}

Table& Database::GetOrCreate(const std::string& relation) {
  auto it = tables_.find(relation);
  if (it == tables_.end()) {
    it = tables_.emplace(relation, Table(relation)).first;
  }
  return it->second;
}

const Table* Database::Find(const std::string& relation) const {
  auto it = tables_.find(relation);
  return it == tables_.end() ? nullptr : &it->second;
}

Table* Database::Find(const std::string& relation) {
  auto it = tables_.find(relation);
  return it == tables_.end() ? nullptr : &it->second;
}

bool Database::Erase(const Tuple& t) {
  Table* table = Find(t.relation());
  return table != nullptr && table->Erase(t);
}

bool Database::Contains(const Tuple& t) const {
  const Table* table = Find(t.relation());
  return table != nullptr && table->Contains(t);
}

std::vector<std::string> Database::RelationNames() const {
  std::vector<std::string> names;
  names.reserve(tables_.size());
  for (const auto& [name, _] : tables_) names.push_back(name);
  std::sort(names.begin(), names.end());
  return names;
}

size_t Database::TotalTuples() const {
  size_t n = 0;
  for (const auto& [_, table] : tables_) n += table.size();
  return n;
}

}  // namespace dpc
