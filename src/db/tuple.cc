#include "src/db/tuple.h"

#include "src/util/logging.h"

namespace dpc {

Tuple Tuple::Make(std::string relation, NodeId loc, std::vector<Value> rest) {
  std::vector<Value> values;
  values.reserve(rest.size() + 1);
  values.push_back(Value::Int(loc));
  for (auto& v : rest) values.push_back(std::move(v));
  return Tuple(std::move(relation), std::move(values));
}

NodeId Tuple::Location() const {
  DPC_CHECK(!values_.empty() && values_[0].is_int())
      << "tuple " << relation_ << " has no integer location attribute";
  return static_cast<NodeId>(values_[0].AsInt());
}

Sha1Digest Tuple::Vid() const {
  ByteWriter w;
  Serialize(w);
  return Sha1::Hash(w.bytes().data(), w.size());
}

void Tuple::Serialize(ByteWriter& w) const {
  w.PutString(relation_);
  w.PutVarint(values_.size());
  for (const auto& v : values_) v.Serialize(w);
}

Result<Tuple> Tuple::Deserialize(ByteReader& r) {
  DPC_ASSIGN_OR_RETURN(std::string rel, r.GetString());
  DPC_ASSIGN_OR_RETURN(uint64_t n, r.GetVarint());
  std::vector<Value> values;
  values.reserve(n);
  for (uint64_t i = 0; i < n; ++i) {
    DPC_ASSIGN_OR_RETURN(Value v, Value::Deserialize(r));
    values.push_back(std::move(v));
  }
  return Tuple(std::move(rel), std::move(values));
}

size_t Tuple::SerializedSize() const {
  ByteWriter w;
  Serialize(w);
  return w.size();
}

std::string Tuple::ToString() const {
  std::string out = relation_;
  out += "(";
  for (size_t i = 0; i < values_.size(); ++i) {
    if (i == 0) out += "@";
    if (i > 0) out += ", ";
    out += values_[i].ToString();
  }
  out += ")";
  return out;
}

}  // namespace dpc
