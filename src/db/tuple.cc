#include "src/db/tuple.h"

#include "src/util/logging.h"
#include "src/util/perf.h"

namespace dpc {

Tuple Tuple::Make(std::string relation, NodeId loc, std::vector<Value> rest) {
  std::vector<Value> values;
  values.reserve(rest.size() + 1);
  values.push_back(Value::Int(loc));
  for (auto& v : rest) values.push_back(std::move(v));
  return Tuple(std::move(relation), std::move(values));
}

NodeId Tuple::Location() const {
  DPC_CHECK(!values_.empty() && values_[0].is_int())
      << "tuple " << relation_ << " has no integer location attribute";
  return static_cast<NodeId>(values_[0].AsInt());
}

const Sha1Digest& Tuple::Vid() const {
  if ((id_.flags & kHasVid) != 0) {
    ++identity_counters().vid_cache_hits;
    return id_.vid;
  }
  ++identity_counters().vid_cache_misses;
  ByteWriter w;
  w.Reserve(SerializedSize());
  Serialize(w);
  id_.vid = Sha1::Hash(w.bytes().data(), w.size());
  id_.flags |= kHasVid;
  return id_.vid;
}

uint64_t Tuple::Hash64() const {
  if ((id_.flags & kHasHash) != 0) return id_.hash64;
  Fnv1a h;
  h.PutString(relation_);
  h.PutVarint(values_.size());
  for (const auto& v : values_) v.HashInto(h);
  id_.hash64 = h.hash();
  id_.flags |= kHasHash;
  return id_.hash64;
}

void Tuple::Serialize(ByteWriter& w) const {
  size_t size = SerializedSize();
  w.Reserve(size);
  identity_counters().tuple_bytes_serialized += size;
  w.PutString(relation_);
  w.PutVarint(values_.size());
  for (const auto& v : values_) v.Serialize(w);
}

Result<Tuple> Tuple::Deserialize(ByteReader& r) {
  DPC_ASSIGN_OR_RETURN(std::string rel, r.GetString());
  DPC_ASSIGN_OR_RETURN(uint64_t n, r.GetVarint());
  // Every value costs at least one encoded byte, so an arity beyond the
  // remaining payload is malformed; checking before reserve() keeps a
  // hostile count from forcing a huge allocation.
  if (n > r.remaining()) {
    return Status::ParseError("tuple arity " + std::to_string(n) +
                              " exceeds remaining payload");
  }
  std::vector<Value> values;
  values.reserve(n);
  for (uint64_t i = 0; i < n; ++i) {
    DPC_ASSIGN_OR_RETURN(Value v, Value::Deserialize(r));
    values.push_back(std::move(v));
  }
  return Tuple(std::move(rel), std::move(values));
}

size_t Tuple::SerializedSize() const {
  if ((id_.flags & kHasSize) != 0) return id_.size;
  size_t size = StringSerializedSize(relation_) + VarintSize(values_.size());
  for (const auto& v : values_) size += v.SerializedSize();
  id_.size = size;
  id_.flags |= kHasSize;
  return size;
}

std::string Tuple::ToString() const {
  std::string out = relation_;
  out += "(";
  for (size_t i = 0; i < values_.size(); ++i) {
    if (i == 0) out += "@";
    if (i > 0) out += ", ";
    out += values_[i].ToString();
  }
  out += ")";
  return out;
}

}  // namespace dpc
