#include "src/db/tuple.h"

#include <thread>

#include "src/util/logging.h"
#include "src/util/perf.h"

namespace dpc {

Tuple Tuple::Make(std::string relation, NodeId loc, std::vector<Value> rest) {
  std::vector<Value> values;
  values.reserve(rest.size() + 1);
  values.push_back(Value::Int(loc));
  for (auto& v : rest) values.push_back(std::move(v));
  return Tuple(std::move(relation), std::move(values));
}

NodeId Tuple::Location() const {
  DPC_CHECK(!values_.empty() && values_[0].is_int())
      << "tuple " << relation_ << " has no integer location attribute";
  return static_cast<NodeId>(values_[0].AsInt());
}

const Sha1Digest& Tuple::Vid() const {
  if (id_.vid_state.load(std::memory_order_acquire) == kVidReady) {
    identity_cells().vid_cache_hits.Bump();
    return id_.vid;
  }
  uint8_t expected = kVidEmpty;
  if (id_.vid_state.compare_exchange_strong(expected, kVidBusy,
                                            std::memory_order_acq_rel,
                                            std::memory_order_acquire)) {
    identity_cells().vid_cache_misses.Bump();
    ByteWriter w;
    w.Reserve(SerializedSize());
    Serialize(w);
    id_.vid = Sha1::Hash(w.bytes().data(), w.size());
    id_.vid_state.store(kVidReady, std::memory_order_release);
    return id_.vid;
  }
  // Another thread claimed the computation (expected now holds kVidBusy or
  // kVidReady). SHA-1 over a small buffer is short; wait for the publish
  // instead of redundantly recomputing.
  while (id_.vid_state.load(std::memory_order_acquire) != kVidReady) {
    std::this_thread::yield();
  }
  identity_cells().vid_cache_hits.Bump();
  return id_.vid;
}

uint64_t Tuple::Hash64() const {
  if (id_.hash_ready.load(std::memory_order_acquire) != 0) {
    return id_.hash64.load(std::memory_order_relaxed);
  }
  Fnv1a h;
  h.PutString(relation_);
  h.PutVarint(values_.size());
  for (const auto& v : values_) v.HashInto(h);
  // Racing computers store the same deterministic value, so the plain
  // store-then-publish is idempotent.
  id_.hash64.store(h.hash(), std::memory_order_relaxed);
  id_.hash_ready.store(1, std::memory_order_release);
  return h.hash();
}

void Tuple::Serialize(ByteWriter& w) const {
  size_t size = SerializedSize();
  w.Reserve(size);
  identity_cells().tuple_bytes_serialized.Bump(size);
  w.PutString(relation_);
  w.PutVarint(values_.size());
  for (const auto& v : values_) v.Serialize(w);
}

Result<Tuple> Tuple::Deserialize(ByteReader& r) {
  DPC_ASSIGN_OR_RETURN(std::string rel, r.GetString());
  DPC_ASSIGN_OR_RETURN(uint64_t n, r.GetVarint());
  // Every value costs at least one encoded byte, so an arity beyond the
  // remaining payload is malformed; checking before reserve() keeps a
  // hostile count from forcing a huge allocation.
  if (n > r.remaining()) {
    return Status::ParseError("tuple arity " + std::to_string(n) +
                              " exceeds remaining payload");
  }
  std::vector<Value> values;
  values.reserve(n);
  for (uint64_t i = 0; i < n; ++i) {
    DPC_ASSIGN_OR_RETURN(Value v, Value::Deserialize(r));
    values.push_back(std::move(v));
  }
  return Tuple(std::move(rel), std::move(values));
}

size_t Tuple::SerializedSize() const {
  size_t cached = id_.size.load(std::memory_order_relaxed);
  if (cached != 0) return cached;
  size_t size = StringSerializedSize(relation_) + VarintSize(values_.size());
  for (const auto& v : values_) size += v.SerializedSize();
  id_.size.store(size, std::memory_order_relaxed);
  return size;
}

std::string Tuple::ToString() const {
  std::string out = relation_;
  out += "(";
  for (size_t i = 0; i < values_.size(); ++i) {
    if (i == 0) out += "@";
    if (i > 0) out += ", ";
    out += values_[i].ToString();
  }
  out += ")";
  return out;
}

}  // namespace dpc
