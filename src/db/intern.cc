#include "src/db/intern.h"

#include "src/util/perf.h"

namespace dpc {

TupleRef* TupleInterner::FindPooled(const Tuple& t) {
  auto it = pool_.find(t.Hash64());
  if (it == pool_.end()) return nullptr;
  for (TupleRef& ref : it->second) {
    if (*ref == t) return &ref;
  }
  return nullptr;
}

void TupleInterner::Pool(TupleRef ref) {
  if (count_ >= max_entries_) {
    // Epoch flush: cheaper and simpler than LRU, and outstanding refs keep
    // their tuples alive independently of the pool.
    pool_.clear();
    count_ = 0;
    ++flushes_;
  }
  pool_[ref->Hash64()].push_back(std::move(ref));
  ++count_;
}

TupleRef TupleInterner::Intern(Tuple t) {
  MutexLock lock(mu_);
  if (TupleRef* pooled = FindPooled(t)) {
    ++hits_;
    identity_cells().tuples_interned.Bump();
    return *pooled;
  }
  TupleRef ref = MakeTupleRef(std::move(t));
  Pool(ref);
  return ref;
}

TupleRef TupleInterner::Intern(const TupleRef& t) {
  MutexLock lock(mu_);
  if (TupleRef* pooled = FindPooled(*t)) {
    ++hits_;
    identity_cells().tuples_interned.Bump();
    return *pooled;
  }
  Pool(t);
  return t;
}

void TupleInterner::Clear() {
  MutexLock lock(mu_);
  pool_.clear();
  count_ = 0;
}

}  // namespace dpc
