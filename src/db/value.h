// Value: the dynamically-typed attribute value of NDlog tuples.
// NDlog programs in this repo manipulate 64-bit integers (node identifiers,
// request ids, numeric payloads) and strings (URLs, packet payloads).
#ifndef DPC_DB_VALUE_H_
#define DPC_DB_VALUE_H_

#include <cstdint>
#include <string>
#include <variant>

#include "src/util/hash.h"
#include "src/util/result.h"
#include "src/util/serial.h"

namespace dpc {

class Value {
 public:
  enum class Kind : uint8_t { kInt = 0, kString = 1 };

  Value() : rep_(int64_t{0}) {}
  explicit Value(int64_t v) : rep_(v) {}
  explicit Value(std::string v) : rep_(std::move(v)) {}
  explicit Value(const char* v) : rep_(std::string(v)) {}
  explicit Value(bool b) : rep_(int64_t{b ? 1 : 0}) {}

  static Value Int(int64_t v) { return Value(v); }
  static Value Str(std::string v) { return Value(std::move(v)); }
  static Value Bool(bool b) { return Value(b); }

  Kind kind() const {
    return std::holds_alternative<int64_t>(rep_) ? Kind::kInt : Kind::kString;
  }
  bool is_int() const { return kind() == Kind::kInt; }
  bool is_string() const { return kind() == Kind::kString; }

  int64_t AsInt() const { return std::get<int64_t>(rep_); }
  const std::string& AsString() const { return std::get<std::string>(rep_); }

  // Truthiness for boolean contexts: nonzero int / nonempty string.
  bool Truthy() const;

  bool operator==(const Value& other) const = default;
  auto operator<=>(const Value& other) const = default;

  // Canonical binary encoding (kind tag + payload); used for hashing and
  // for storage-size accounting.
  void Serialize(ByteWriter& w) const;
  static Result<Value> Deserialize(ByteReader& r);
  // Computed arithmetically (kind byte + varint/payload widths); always
  // equal to the number of bytes Serialize appends, without materializing
  // a buffer.
  size_t SerializedSize() const;

  // Folds the canonical encoding into `h`, byte-for-byte what Serialize
  // would write — so container hashes agree with hashes of the serialized
  // form without allocating.
  void HashInto(Fnv1a& h) const;

  // Display form: integers verbatim, strings double-quoted.
  std::string ToString() const;

 private:
  std::variant<int64_t, std::string> rep_;
};

}  // namespace dpc

#endif  // DPC_DB_VALUE_H_
