#include "src/apps/forwarding.h"

#include <set>

#include "src/util/logging.h"

namespace dpc::apps {

const char kForwardingProgramText[] = R"(
  r1 packet(@N, S, D, DT) :- packet(@L, S, D, DT), route(@L, D, N).
  r2 recv(@L, S, D, DT)   :- packet(@L, S, D, DT), D == L.
)";

Result<Program> MakeForwardingProgram() {
  ProgramOptions options;
  options.name = "packet-forwarding";
  options.relations_of_interest = {"recv"};
  return Program::Parse(kForwardingProgramText, std::move(options));
}

Tuple MakeRoute(NodeId at, NodeId dst, NodeId next_hop) {
  return Tuple::Make("route", at,
                     {Value::Int(dst), Value::Int(next_hop)});
}

Tuple MakePacket(NodeId at, NodeId src, NodeId dst, std::string payload) {
  return Tuple::Make(
      "packet", at,
      {Value::Int(src), Value::Int(dst), Value::Str(std::move(payload))});
}

Tuple MakeRecv(NodeId at, NodeId src, NodeId dst, std::string payload) {
  return Tuple::Make(
      "recv", at,
      {Value::Int(src), Value::Int(dst), Value::Str(std::move(payload))});
}

Status InstallRoutesForPair(System& system, const Topology& topology,
                            NodeId src, NodeId dst) {
  std::vector<NodeId> path = topology.Path(src, dst);
  if (path.empty()) {
    return Status::NotFound("no path from " + std::to_string(src) + " to " +
                            std::to_string(dst));
  }
  for (size_t i = 0; i + 1 < path.size(); ++i) {
    DPC_RETURN_NOT_OK(
        system.InsertSlowTuple(MakeRoute(path[i], dst, path[i + 1])));
  }
  return Status::OK();
}

std::vector<std::pair<NodeId, NodeId>> PickCommunicatingPairs(
    const TransitStubTopology& topo, size_t count, Rng& rng) {
  DPC_CHECK(topo.stub_nodes.size() >= 2);
  std::vector<std::pair<NodeId, NodeId>> pairs;
  std::set<std::pair<NodeId, NodeId>> seen;
  size_t distinct_limit =
      topo.stub_nodes.size() * (topo.stub_nodes.size() - 1);
  while (pairs.size() < count && seen.size() < distinct_limit) {
    NodeId s = topo.stub_nodes[rng.NextBelow(topo.stub_nodes.size())];
    NodeId d = topo.stub_nodes[rng.NextBelow(topo.stub_nodes.size())];
    if (s == d) continue;
    if (!seen.insert({s, d}).second) continue;
    pairs.emplace_back(s, d);
  }
  return pairs;
}

std::string MakePayload(size_t len, uint64_t seq) {
  std::string payload;
  payload.reserve(len);
  payload = "pkt-" + std::to_string(seq) + "-";
  while (payload.size() < len) {
    payload.push_back(
        static_cast<char>('a' + (payload.size() * 31 + seq) % 26));
  }
  payload.resize(len);
  return payload;
}

}  // namespace dpc::apps
