#include "src/apps/experiments.h"

#include <cstdio>
#include <cstdlib>

#include "src/util/logging.h"

namespace dpc::apps {

size_t ExperimentResult::TotalStorageAt(size_t i) const {
  if (i >= per_node_storage.size()) {
    DPC_LOG(Warning) << "storage snapshot " << i << " requested but only "
                     << per_node_storage.size() << " were taken";
    return 0;
  }
  size_t total = 0;
  for (size_t v : per_node_storage[i]) total += v;
  return total;
}

// Growth rates need at least two snapshots spanning positive simulated
// time. A run too short (or too mis-configured) to produce them reports
// zero growth with a warning — `size() - 1` on an empty snapshot vector
// must never underflow into an out-of-range index.
bool ExperimentResult::HasGrowthWindow() const {
  if (snapshot_times.size() < 2 ||
      per_node_storage.size() < snapshot_times.size()) {
    DPC_LOG(Warning) << "growth rate requested with "
                     << snapshot_times.size() << " snapshot(s); returning 0";
    return false;
  }
  if (snapshot_times.back() <= snapshot_times.front()) {
    DPC_LOG(Warning) << "growth rate requested over an empty time window; "
                        "returning 0";
    return false;
  }
  return true;
}

std::vector<double> ExperimentResult::PerNodeGrowthBps() const {
  std::vector<double> out;
  if (!HasGrowthWindow()) return out;
  size_t nodes = per_node_storage.front().size();
  double span = snapshot_times.back() - snapshot_times.front();
  for (size_t n = 0; n < nodes; ++n) {
    double delta =
        static_cast<double>(per_node_storage.back()[n]) -
        static_cast<double>(per_node_storage.front()[n]);
    out.push_back(delta * 8.0 / span);
  }
  return out;
}

double ExperimentResult::TotalGrowthBytesPerSec() const {
  if (!HasGrowthWindow()) return 0;
  double span = snapshot_times.back() - snapshot_times.front();
  return (static_cast<double>(TotalStorageAt(snapshot_times.size() - 1)) -
          static_cast<double>(TotalStorageAt(0))) /
         span;
}

ExperimentResult RunExperiment(
    Scheme scheme, Program program, const Topology* topology,
    const std::vector<WorkloadItem>& workload, const ExperimentConfig& config,
    const std::function<Status(System&)>& install,
    const std::function<void(System&, double)>& periodic_update) {
  TestbedOptions options;
  options.loss_rate = config.loss_rate;
  options.loss_seed = config.loss_seed;
  options.reliable_transport = config.reliable_transport;
  options.transport = config.transport;
  options.shards = config.shards;
  options.batch_eval = config.batch_eval;
  options.trace_path = config.trace_path;
  options.metrics = config.metrics;
  options.wal_dir = config.wal_dir;
  options.wal_buffered = config.wal_buffered;
  auto bed_result =
      Testbed::Create(std::move(program), topology, scheme, options);
  DPC_CHECK(bed_result.ok()) << bed_result.status().ToString();
  auto bed = std::move(bed_result).value();

  bed->network().set_bucket_width_s(config.bandwidth_bucket_s);

  DPC_CHECK(install(bed->system()).ok());
  // Drain setup traffic (e.g. §5.5 broadcasts) and zero the accounting so
  // the measurement window only sees workload traffic. The transport's
  // counters reset symmetrically with the network's: retransmit/dup
  // counts must describe the same window as the byte counts.
  bed->system().Run();
  bed->network().ResetAccounting();
  if (bed->transport() != nullptr) bed->transport()->ResetStats();
  IdentityCounters identity_before = identity_counters();
  MetricsSnapshot metrics_before = GlobalMetrics().Snapshot();

  // The setup drain leaves the clock wherever the last setup event ran —
  // under reliable transport with loss, a broadcast's retransmission
  // ladder can take tens of simulated seconds. Rebase the measured phase
  // there: scheduling it at absolute workload times would land in the
  // past, and the queue's monotonic clamp would pile every inject onto a
  // single instant, manufacturing same-time collisions whose ordering is
  // not defined across shard counts. A drained run aligns every shard
  // queue to the same end time (ShardEngine::RunLoop), so t0 — and with
  // it every rebased timestamp — is identical at any shard count.
  const double t0 = bed->queue().now();
  bed->network().set_bucket_origin_s(t0);

  ExperimentResult result;
  result.scheme = SchemeName(scheme);

  // Snapshots and slow-state updates read/mutate cross-shard state, so on
  // the sharded engine they run as global actions at window barriers —
  // after everything earlier than t, before anything at exactly t. They
  // are scheduled before the injects so the single-queue run executes
  // same-time ties in the same order the engine defines.
  int num_nodes = topology->num_nodes();
  auto snapshot = [&result, &bed, num_nodes](double t) {
    result.snapshot_times.push_back(t);
    std::vector<size_t> row(num_nodes);
    for (NodeId n = 0; n < num_nodes; ++n) {
      row[n] = bed->recorder().StorageAt(n).Total();
    }
    result.per_node_storage.push_back(std::move(row));
  };

  for (double t = 0; t <= config.duration_s + 1e-9;
       t += config.snapshot_interval_s) {
    bed->ScheduleGlobal(t0 + t, [&snapshot, t]() { snapshot(t); });
  }
  if (periodic_update && config.route_update_interval_s > 0) {
    for (double t = config.route_update_interval_s; t < config.duration_s;
         t += config.route_update_interval_s) {
      bed->ScheduleGlobal(
          t0 + t,
          [&bed, &periodic_update, t]() { periodic_update(bed->system(), t); });
    }
  }

  // Periodic WAL checkpoints are global actions too: they serialize every
  // node's tables, which must not race shard workers.
  if (bed->wal() != nullptr && config.wal_checkpoint_interval_s > 0) {
    for (double t = config.wal_checkpoint_interval_s; t < config.duration_s;
         t += config.wal_checkpoint_interval_s) {
      bed->ScheduleGlobal(t0 + t, [&bed]() {
        Status st = bed->wal()->Checkpoint();
        if (!st.ok()) {
          DPC_LOG(Error) << "wal checkpoint failed: " << st.ToString();
        }
      });
    }
  }

  for (const WorkloadItem& item : workload) {
    Status st = bed->system().ScheduleInject(item.event, t0 + item.time_s);
    DPC_CHECK(st.ok()) << st.ToString();
  }

  bed->system().RunUntil(t0 + config.duration_s);
  bed->system().Run();  // drain in-flight traffic past the window

  result.final_storage = bed->TotalStorage();
  result.total_network_bytes = bed->network().total_bytes_sent();
  result.total_messages = bed->network().total_messages();
  result.bandwidth_buckets = bed->network().bucket_bytes();
  result.bandwidth_bucket_s = config.bandwidth_bucket_s;
  result.events_injected = bed->system().stats().events_injected;
  result.outputs = bed->system().stats().outputs;
  result.dropped_messages = bed->network().dropped_messages();
  if (bed->transport() != nullptr) {
    result.transport_stats = bed->transport()->stats();
  }
  result.identity = identity_counters() - identity_before;
  if (config.metrics) {
    result.metrics = GlobalMetrics().Snapshot().Delta(metrics_before);
  }
  if (!config.trace_path.empty()) {
    Status st = bed->FlushTrace();
    if (!st.ok()) {
      DPC_LOG(Error) << "trace export failed: " << st.ToString();
    }
  }
  return result;
}

ForwardingWorkload MakeForwardingWorkload(const TransitStubTopology& topo,
                                          size_t pairs, double rate_pps,
                                          double duration_s,
                                          size_t payload_len, uint64_t seed) {
  ForwardingWorkload w;
  Rng rng(seed);
  w.pairs = PickCommunicatingPairs(topo, pairs, rng);
  uint64_t seq = 0;
  for (size_t p = 0; p < w.pairs.size(); ++p) {
    auto [s, d] = w.pairs[p];
    double offset = rng.NextDouble() / rate_pps;  // stagger the pairs
    for (double t = offset; t < duration_s; t += 1.0 / rate_pps) {
      w.items.push_back(WorkloadItem{
          MakePacket(s, s, d, MakePayload(payload_len, seq)), t});
      ++seq;
    }
  }
  return w;
}

ForwardingWorkload MakeFixedCountForwardingWorkload(
    const TransitStubTopology& topo, size_t pairs, size_t total_packets,
    double duration_s, size_t payload_len, uint64_t seed) {
  ForwardingWorkload w;
  Rng rng(seed);
  w.pairs = PickCommunicatingPairs(topo, pairs, rng);
  DPC_CHECK(!w.pairs.empty());
  uint64_t seq = 0;
  for (size_t i = 0; i < total_packets; ++i) {
    auto [s, d] = w.pairs[i % w.pairs.size()];
    double t = duration_s * static_cast<double>(i) /
               static_cast<double>(total_packets);
    w.items.push_back(
        WorkloadItem{MakePacket(s, s, d, MakePayload(payload_len, seq)), t});
    ++seq;
  }
  return w;
}

ExperimentResult RunForwarding(Scheme scheme,
                               const TransitStubTopology& topo,
                               const ForwardingWorkload& workload,
                               const ExperimentConfig& config) {
  auto program = MakeForwardingProgram();
  DPC_CHECK(program.ok());
  auto install = [&](System& sys) -> Status {
    for (auto [s, d] : workload.pairs) {
      DPC_RETURN_NOT_OK(InstallRoutesForPair(sys, topo.graph, s, d));
    }
    return Status::OK();
  };
  std::function<void(System&, double)> periodic;
  if (config.route_update_interval_s > 0) {
    // §6.1.2: update a route every interval. Toggling a fresh destination
    // entry forces the §5.5 broadcast + cache reset path.
    periodic = [&topo](System& sys, double t) {
      Rng rng(static_cast<uint64_t>(t * 1000) + 99);
      auto [s, d] = topo.stub_nodes.size() >= 2
                        ? std::pair<NodeId, NodeId>{topo.stub_nodes[rng.NextBelow(
                                                        topo.stub_nodes.size())],
                                                    topo.stub_nodes[0]}
                        : std::pair<NodeId, NodeId>{0, 1};
      // A synthetic, otherwise-unused route entry: enough to trigger the
      // §5.5 machinery without disturbing the measured traffic.
      Status st = sys.InsertSlowTuple(
          MakeRoute(s, static_cast<NodeId>(10000 + t), d));
      DPC_CHECK(st.ok()) << st.ToString();
    };
  }
  return RunExperiment(scheme, std::move(program).value(), &topo.graph,
                       workload.items, config, install, periodic);
}

std::vector<WorkloadItem> MakeDnsWorkload(const DnsUniverse& universe,
                                          size_t count, double rate_rps,
                                          double zipf_theta, uint64_t seed,
                                          int num_urls) {
  size_t urls =
      num_urls > 0
          ? std::min<size_t>(num_urls, universe.urls.size())
          : universe.urls.size();
  ZipfGenerator zipf(urls, zipf_theta, seed);
  Rng rng(seed + 17);
  std::vector<WorkloadItem> items;
  items.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    NodeId client = universe.clients[i % universe.clients.size()];
    const std::string& url = universe.urls[zipf.Next()];
    double t = static_cast<double>(i) / rate_rps;
    items.push_back(WorkloadItem{
        MakeUrlEvent(client, url, static_cast<int64_t>(i)), t});
  }
  return items;
}

ExperimentResult RunDns(Scheme scheme, const DnsUniverse& universe,
                        const std::vector<WorkloadItem>& workload,
                        const ExperimentConfig& config) {
  auto program = MakeDnsProgram();
  DPC_CHECK(program.ok());
  auto install = [&](System& sys) -> Status {
    return InstallDnsState(sys, universe);
  };
  return RunExperiment(scheme, std::move(program).value(), &universe.graph,
                       workload, config, install);
}

double EnvDouble(const char* name, double def) {
  const char* v = std::getenv(name);
  return v == nullptr ? def : std::atof(v);
}

size_t EnvSize(const char* name, size_t def) {
  const char* v = std::getenv(name);
  return v == nullptr ? def : static_cast<size_t>(std::atoll(v));
}

void PrintFigureHeader(const std::string& figure, const std::string& setup) {
  std::printf("==============================================================\n");
  std::printf("%s\n", figure.c_str());
  std::printf("%s\n", setup.c_str());
  std::printf("==============================================================\n");
}

}  // namespace dpc::apps
