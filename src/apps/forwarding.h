// Packet forwarding (Fig. 1): the paper's first evaluation application.
//
//   r1 packet(@N, S, D, DT) :- packet(@L, S, D, DT), route(@L, D, N).
//   r2 recv(@L, S, D, DT)   :- packet(@L, S, D, DT), D == L.
//
// Routes are installed along precomputed shortest paths (the paper ran a
// declarative routing protocol offline for the same purpose); `recv` is the
// relation of interest.
#ifndef DPC_APPS_FORWARDING_H_
#define DPC_APPS_FORWARDING_H_

#include <string>
#include <utility>
#include <vector>

#include "src/ndlog/program.h"
#include "src/net/transit_stub.h"
#include "src/runtime/system.h"
#include "src/util/rng.h"

namespace dpc::apps {

// The DELP source text of Fig. 1.
extern const char kForwardingProgramText[];

// Parses and validates the forwarding program; `recv` is of interest.
Result<Program> MakeForwardingProgram();

Tuple MakeRoute(NodeId at, NodeId dst, NodeId next_hop);
Tuple MakePacket(NodeId at, NodeId src, NodeId dst, std::string payload);
Tuple MakeRecv(NodeId at, NodeId src, NodeId dst, std::string payload);

// Installs route tuples along the shortest path from `src` to `dst`
// (one per intermediate node, keyed by destination).
Status InstallRoutesForPair(System& system, const Topology& topology,
                            NodeId src, NodeId dst);

// Draws `count` distinct (src, dst) stub-node pairs.
std::vector<std::pair<NodeId, NodeId>> PickCommunicatingPairs(
    const TransitStubTopology& topo, size_t count, Rng& rng);

// A deterministic printable payload of `len` bytes, unique per `seq`
// (the paper's packets carry 500-character payloads, §6.2.2).
std::string MakePayload(size_t len, uint64_t seq);

inline constexpr size_t kDefaultPayloadLen = 500;

}  // namespace dpc::apps

#endif  // DPC_APPS_FORWARDING_H_
