// Recursive DNS resolution (Appendix F): the paper's second evaluation
// application.
//
//   r1 request(@RT, URL, HST, RQID)  :- url(@HST, URL, RQID),
//                                       rootServer(@HST, RT).
//   r2 request(@SV, URL, HST, RQID)  :- request(@X, URL, HST, RQID),
//                                       nameServer(@X, DM, SV),
//                                       f_isSubDomain(DM, URL) == true.
//   r3 dnsResult(@X, URL, IPADDR, HST, RQID) :-
//                                       request(@X, URL, HST, RQID),
//                                       addressRecord(@X, URL, IPADDR).
//   r4 reply(@HST, URL, IPADDR, RQID) :-
//                                       dnsResult(@X, URL, IPADDR, HST, RQID).
//
// The synthetic universe mirrors §6.2: ~100 nameservers in a deep tree
// (max depth 27), 38 distinct URLs, client hosts issuing Zipf-distributed
// requests (Jung et al.).
#ifndef DPC_APPS_DNS_H_
#define DPC_APPS_DNS_H_

#include <string>
#include <vector>

#include "src/ndlog/program.h"
#include "src/net/topology.h"
#include "src/runtime/system.h"
#include "src/util/rng.h"

namespace dpc::apps {

extern const char kDnsProgramText[];

// Parses and validates the DNS program; `reply` is of interest.
Result<Program> MakeDnsProgram();

Tuple MakeUrlEvent(NodeId client, const std::string& url, int64_t rqid);

struct DnsParams {
  int num_servers = 100;
  // 0 = every non-root nameserver also acts as a requesting client.
  int num_clients = 0;
  // The paper's topology is 100 nameservers total: client hosts are
  // co-located on (randomly chosen, non-root) nameservers by default.
  // When false, clients get dedicated nodes attached to random servers.
  bool colocate_clients = true;
  int num_urls = 38;
  // Length of the trunk chain grown first; bounds the tree depth.
  int trunk_depth = 27;
  double zipf_theta = 0.9;
  LinkProps server_link{0.005, 100e6};
  LinkProps client_link{0.002, 50e6};
  uint64_t seed = 7;
};

struct DnsUniverse {
  Topology graph;  // routes computed
  std::vector<NodeId> servers;
  NodeId root_server = kNullNode;
  std::vector<NodeId> clients;
  // domain[i] is the domain managed by servers[i] ("" for the root).
  std::vector<std::string> domains;
  // parent[i] indexes servers; -1 for the root.
  std::vector<int> parents;
  std::vector<std::string> urls;
  // url_holder[u] indexes servers: who owns urls[u]'s address record.
  std::vector<int> url_holders;
  int max_depth = 0;
};

// Builds the nameserver tree, client attachments, domains and URLs.
DnsUniverse MakeDnsUniverse(const DnsParams& params = {});

// Inserts rootServer / nameServer / addressRecord slow-changing tuples.
Status InstallDnsState(System& system, const DnsUniverse& universe);

// Draws a Zipf-distributed URL index sequence of length `count`.
std::vector<size_t> ZipfUrlSequence(const DnsUniverse& universe, size_t count,
                                    double theta, uint64_t seed);

}  // namespace dpc::apps

#endif  // DPC_APPS_DNS_H_
