// Reusable experiment drivers behind the bench/ binaries that regenerate
// the paper's Figures 8-16. Each driver deploys one maintenance scheme on a
// topology, replays a workload over simulated time, snapshots per-node
// storage at fixed intervals and collects the network's bandwidth buckets.
//
// Scales default to laptop-sized runs; the DPC_* environment variables
// documented in EXPERIMENTS.md restore the paper's scale.
#ifndef DPC_APPS_EXPERIMENTS_H_
#define DPC_APPS_EXPERIMENTS_H_

#include <string>
#include <vector>

#include "src/apps/dns.h"
#include "src/apps/forwarding.h"
#include "src/apps/testbed.h"
#include "src/obs/metrics.h"
#include "src/util/perf.h"
#include "src/util/stats.h"

namespace dpc::apps {

// One scheduled input event.
struct WorkloadItem {
  Tuple event;
  double time_s = 0;
};

struct ExperimentConfig {
  double duration_s = 20;
  double snapshot_interval_s = 2;
  double bandwidth_bucket_s = 1.0;
  // When > 0, re-install a random communicating pair's first route entry
  // every this many seconds (the §6.1.2 slow-changing-update variant).
  double route_update_interval_s = 0;
  // Fault injection: uniform per-traversal loss probability on the
  // deployment's network (0 = lossless), with the seed that drives it.
  double loss_rate = 0;
  uint64_t loss_seed = 1;
  // Run the System over a ReliableTransport so the workload converges to
  // the loss-free outputs despite the injected loss.
  bool reliable_transport = false;
  TransportOptions transport;
  // Runtime shard count (TestbedOptions::shards): > 1 runs the workload
  // on the parallel sharded engine. Results are byte-identical to 1.
  int shards = 1;
  // Set-at-a-time batch evaluation (TestbedOptions::batch_eval). Results
  // are byte-identical on or off; off forces tuple-at-a-time for
  // differential testing.
  bool batch_eval = true;
  // When non-empty, trace the run and write Chrome-trace JSON here
  // (TestbedOptions::trace_path).
  std::string trace_path;
  // Capture the run's metrics delta into ExperimentResult::metrics.
  bool metrics = true;
  // Durability: when non-empty, journal every recorder mutation to
  // per-node WALs under this directory (TestbedOptions::wal_dir) and cut
  // compacted checkpoints every wal_checkpoint_interval_s of measured
  // time (0 = WAL only, no periodic checkpoints). The interval doubles as
  // the recovery-granularity knob: a crash replays at most one interval's
  // worth of log.
  std::string wal_dir;
  double wal_checkpoint_interval_s = 0;
  // Group-commit WAL appends (TestbedOptions::wal_buffered): cheaper, but
  // a crash loses the buffered tail.
  bool wal_buffered = false;
};

struct ExperimentResult {
  std::string scheme;
  // Snapshot times and, per node, the scheme's total storage bytes.
  std::vector<double> snapshot_times;
  std::vector<std::vector<size_t>> per_node_storage;  // [snapshot][node]
  StorageBreakdown final_storage;
  uint64_t total_network_bytes = 0;
  uint64_t total_messages = 0;
  std::vector<uint64_t> bandwidth_buckets;  // bytes per bucket
  double bandwidth_bucket_s = 1.0;
  uint64_t events_injected = 0;
  uint64_t outputs = 0;
  // Fault-injection accounting (zero on lossless runs).
  uint64_t dropped_messages = 0;
  TransportStats transport_stats;
  // Identity-work counters (SHA-1 runs, bytes serialized, cache traffic)
  // over the measurement window: this run's delta of the process-wide
  // counters, taken after setup traffic drains.
  IdentityCounters identity;
  // Observability counters/histograms over the same window (delta of the
  // process-wide MetricsRegistry; empty when ExperimentConfig::metrics is
  // false). Render with metrics.ToText() or metrics.ToJson().
  MetricsSnapshot metrics;

  // Total storage across nodes at snapshot i (0 with a warning when
  // fewer snapshots were taken).
  size_t TotalStorageAt(size_t i) const;
  // Per-node average storage growth rate in bits per simulated second.
  std::vector<double> PerNodeGrowthBps() const;
  // Aggregate growth rate in bytes per simulated second. Both growth
  // accessors report 0 (with a warning) when the run produced fewer than
  // two snapshots.
  double TotalGrowthBytesPerSec() const;

 private:
  bool HasGrowthWindow() const;
};

// Runs `scheme` over `topology` with pre-installed slow state and the given
// workload. `install` is invoked once before any event fires.
ExperimentResult RunExperiment(
    Scheme scheme, Program program, const Topology* topology,
    const std::vector<WorkloadItem>& workload, const ExperimentConfig& config,
    const std::function<Status(System&)>& install,
    const std::function<void(System&, double)>& periodic_update = nullptr);

// --- packet forwarding (§6.1) ----------------------------------------------

struct ForwardingWorkload {
  std::vector<std::pair<NodeId, NodeId>> pairs;
  std::vector<WorkloadItem> items;
};

// `pairs` communicating node pairs; each sends `rate_pps` packets/second
// for `duration_s` (offset-staggered), 500-byte payloads by default.
ForwardingWorkload MakeForwardingWorkload(const TransitStubTopology& topo,
                                          size_t pairs, double rate_pps,
                                          double duration_s,
                                          size_t payload_len, uint64_t seed);

// Fixed total budget of packets spread evenly over `pairs` pairs (Fig. 10).
ForwardingWorkload MakeFixedCountForwardingWorkload(
    const TransitStubTopology& topo, size_t pairs, size_t total_packets,
    double duration_s, size_t payload_len, uint64_t seed);

ExperimentResult RunForwarding(Scheme scheme,
                               const TransitStubTopology& topo,
                               const ForwardingWorkload& workload,
                               const ExperimentConfig& config);

// --- DNS resolution (§6.2) --------------------------------------------------

// `count` Zipf-distributed requests at `rate_rps` aggregate rate, spread
// round-robin over the clients; restricted to the first `num_urls` URLs
// when num_urls > 0.
std::vector<WorkloadItem> MakeDnsWorkload(const DnsUniverse& universe,
                                          size_t count, double rate_rps,
                                          double zipf_theta, uint64_t seed,
                                          int num_urls = 0);

ExperimentResult RunDns(Scheme scheme, const DnsUniverse& universe,
                        const std::vector<WorkloadItem>& workload,
                        const ExperimentConfig& config);

// --- environment-variable scaling -------------------------------------------

// Reads env var `name` as double/size_t, falling back to `def`.
double EnvDouble(const char* name, double def);
size_t EnvSize(const char* name, size_t def);

// Pretty-prints a figure header + the per-scheme series rows.
void PrintFigureHeader(const std::string& figure, const std::string& setup);

}  // namespace dpc::apps

#endif  // DPC_APPS_EXPERIMENTS_H_
