#include "src/apps/testbed.h"

#include "src/util/logging.h"

namespace dpc::apps {

const char* SchemeName(Scheme scheme) {
  switch (scheme) {
    case Scheme::kReference: return "Reference";
    case Scheme::kExspan: return "ExSPAN";
    case Scheme::kBasic: return "Basic";
    case Scheme::kAdvanced: return "Advanced";
    case Scheme::kAdvancedInterClass: return "Advanced+InterClass";
  }
  return "?";
}

Testbed::Testbed(Program program, const Topology* topology, Scheme scheme,
                 TestbedOptions options)
    : program_(std::move(program)),
      topology_(topology),
      scheme_(scheme),
      options_(std::move(options)),
      network_(topology, &queue_) {}

Result<std::unique_ptr<Testbed>> Testbed::Create(Program program,
                                                 const Topology* topology,
                                                 Scheme scheme,
                                                 QueryCostModel query_cost) {
  TestbedOptions options;
  options.query_cost = query_cost;
  return Create(std::move(program), topology, scheme, std::move(options));
}

Result<std::unique_ptr<Testbed>> Testbed::Create(Program program,
                                                 const Topology* topology,
                                                 Scheme scheme,
                                                 TestbedOptions options) {
  DPC_CHECK(topology != nullptr);
  std::unique_ptr<Testbed> bed(
      new Testbed(std::move(program), topology, scheme, std::move(options)));
  int n = topology->num_nodes();

  switch (scheme) {
    case Scheme::kReference: {
      auto rec = std::make_unique<ReferenceRecorder>(n);
      bed->reference_ = rec.get();
      bed->recorder_ = std::move(rec);
      break;
    }
    case Scheme::kExspan: {
      auto rec = std::make_unique<ExspanRecorder>(n);
      bed->exspan_ = rec.get();
      bed->recorder_ = std::move(rec);
      break;
    }
    case Scheme::kBasic: {
      auto rec = std::make_unique<BasicRecorder>(&bed->program_, n);
      bed->basic_ = rec.get();
      bed->recorder_ = std::move(rec);
      break;
    }
    case Scheme::kAdvanced:
    case Scheme::kAdvancedInterClass: {
      DPC_ASSIGN_OR_RETURN(EquivalenceKeys keys,
                           ComputeEquivalenceKeys(bed->program_));
      AdvancedOptions options;
      options.inter_class_sharing = (scheme == Scheme::kAdvancedInterClass);
      auto rec = std::make_unique<AdvancedRecorder>(&bed->program_,
                                                    std::move(keys), n,
                                                    options);
      bed->advanced_ = rec.get();
      bed->recorder_ = std::move(rec);
      break;
    }
  }

  ProvenanceRecorder* recorder = bed->recorder_.get();
  if (!bed->options_.wal_dir.empty()) {
    if (!recorder->SupportsNodeState()) {
      return Status::InvalidArgument(
          std::string("wal_dir: scheme ") + SchemeName(scheme) +
          " has no node-state serialization, so it cannot be journaled");
    }
    WalOptions wal;
    wal.dir = bed->options_.wal_dir;
    wal.sync_each_record = bed->options_.wal_sync;
    wal.flush_each_record = !bed->options_.wal_buffered;
    DPC_ASSIGN_OR_RETURN(
        bed->wal_, WalRecorder::Attach(recorder, &bed->program_, n, wal));
    recorder = bed->wal_.get();
  }

  if (bed->options_.loss_rate > 0) {
    bed->network_.SetLossRate(bed->options_.loss_rate,
                              bed->options_.loss_seed);
  }
  MessageChannel* channel = &bed->network_;
  if (bed->options_.reliable_transport) {
    bed->transport_ = std::make_unique<ReliableTransport>(
        &bed->network_, &bed->queue_, bed->options_.transport);
    channel = bed->transport_.get();
  }
  bed->system_ = std::make_unique<System>(&bed->program_, topology, channel,
                                          &bed->queue_, DefaultFunctions(),
                                          recorder);
  bed->system_->SetBatchEval(bed->options_.batch_eval);

  int shards = bed->options_.shards;
  if (shards < 1) shards = 1;
  if (shards > n) shards = n;
  if (shards > 1) {
    SimTime lookahead =
        MinCrossShardLatency(*topology, ShardMap(n, shards));
    if (lookahead <= 0) {
      DPC_LOG(Warning) << "testbed: zero cross-shard lookahead (a "
                          "zero-latency link crosses shards); running "
                          "with 1 shard";
      shards = 1;
    }
  }
  bed->shards_ = shards;
  if (shards > 1) {
    bed->engine_ =
        std::make_unique<ShardEngine>(topology, shards, &bed->queue_);
    bed->network_.BindShardEngine(bed->engine_.get());
    bed->system_->BindShardEngine(bed->engine_.get());
    if (bed->transport_ != nullptr) {
      // Retransmission timers move onto the owning shard's queue: sender
      // state is per node, so arming and (ack-triggered) cancellation both
      // happen on the source node's shard.
      bed->transport_->BindShardEngine(bed->engine_.get());
    }
  }

  if (!bed->options_.trace_path.empty() || bed->options_.trace) {
    if (Trace().enabled()) {
      DPC_LOG(Warning) << "tracer already enabled by another deployment; "
                          "rebinding it to this testbed's clock";
    }
    // The clock dereferences bed->queue_ (or the engine's barrier clock
    // when sharded — shard-safe, at window granularity), so the destructor
    // must disable the tracer before those die (see ~Testbed).
    if (bed->engine_ != nullptr) {
      ShardEngine* e = bed->engine_.get();
      Trace().Enable([e]() { return e->now(); },
                     bed->options_.trace_max_events);
    } else {
      EventQueue* q = &bed->queue_;
      Trace().Enable([q]() { return q->now(); },
                     bed->options_.trace_max_events);
    }
    bed->tracing_ = true;
  }
  if (bed->options_.metrics) {
    bed->metrics_baseline_ = GlobalMetrics().Snapshot();
  }
  return bed;
}

Testbed::~Testbed() {
  if (!tracing_) return;
  if (!trace_flushed_) {
    Status st = FlushTrace();
    if (!st.ok()) {
      DPC_LOG(Error) << "trace flush failed: " << st.ToString();
    }
  }
  Trace().Disable();  // the clock closes over queue_, which dies next
}

Status Testbed::FlushTrace() {
  if (!tracing_ || options_.trace_path.empty()) return Status::OK();
  trace_flushed_ = true;
  return Trace().WriteChromeJson(options_.trace_path);
}

void Testbed::ScheduleGlobal(SimTime t, std::function<void()> fn) {
  if (engine_ != nullptr) {
    engine_->ScheduleGlobal(t, std::move(fn));
  } else {
    queue_.ScheduleAt(t, std::move(fn));
  }
}

MetricsSnapshot Testbed::MetricsDelta() const {
  if (!options_.metrics) return MetricsSnapshot{};
  return GlobalMetrics().Snapshot().Delta(metrics_baseline_);
}

std::unique_ptr<ProvenanceQuerier> Testbed::MakeQuerier() const {
  switch (scheme_) {
    case Scheme::kReference:
      return nullptr;
    case Scheme::kExspan:
      return std::make_unique<ExspanQuerier>(exspan_, topology_,
                                             options_.query_cost);
    case Scheme::kBasic:
      return std::make_unique<BasicQuerier>(basic_, &program_,
                                            &system_->functions(), topology_,
                                            options_.query_cost);
    case Scheme::kAdvanced:
    case Scheme::kAdvancedInterClass:
      return std::make_unique<AdvancedQuerier>(advanced_, &program_,
                                               &system_->functions(),
                                               topology_, options_.query_cost);
  }
  return nullptr;
}

}  // namespace dpc::apps
