#include "src/apps/extras.h"

#include "src/util/logging.h"

namespace dpc::apps {

const char kArpProgramText[] = R"(
  a1 arpReq(@SW, IP, H)    :- arpQuery(@H, IP), uplink(@H, SW).
  a2 arpReq(@OW, IP, H)    :- arpReq(@SW, IP, H), owner(@SW, IP, OW).
  a3 arpReply(@H, IP, MAC) :- arpReq(@OW, IP, H), macOf(@OW, IP, MAC).
)";

const char kDhcpProgramText[] = R"(
  d1 dhcpReq(@R, MAC, H)    :- dhcpDiscover(@H, MAC), relay(@H, R).
  d2 dhcpReq(@S, MAC, H)    :- dhcpReq(@R, MAC, H), dhcpServer(@R, S).
  d3 dhcpOffer(@H, MAC, IP) :- dhcpReq(@S, MAC, H), pool(@S, MAC, IP).
)";

Result<Program> MakeArpProgram() {
  ProgramOptions options;
  options.name = "arp";
  options.relations_of_interest = {"arpReply"};
  return Program::Parse(kArpProgramText, std::move(options));
}

Result<Program> MakeDhcpProgram() {
  ProgramOptions options;
  options.name = "dhcp";
  options.relations_of_interest = {"dhcpOffer"};
  return Program::Parse(kDhcpProgramText, std::move(options));
}

Tuple MakeArpQuery(NodeId host, int64_t ip) {
  return Tuple::Make("arpQuery", host, {Value::Int(ip)});
}

Tuple MakeArpReply(NodeId host, int64_t ip, const std::string& mac) {
  return Tuple::Make("arpReply", host, {Value::Int(ip), Value::Str(mac)});
}

Tuple MakeDhcpDiscover(NodeId host, const std::string& mac) {
  return Tuple::Make("dhcpDiscover", host, {Value::Str(mac)});
}

Tuple MakeDhcpOffer(NodeId host, const std::string& mac, int64_t ip) {
  return Tuple::Make("dhcpOffer", host, {Value::Str(mac), Value::Int(ip)});
}

int64_t LanIpOfHost(int host_index) { return 100 + host_index; }

std::string LanMacOfHost(int host_index) {
  return "aa:" + std::to_string(host_index);
}

LanFixture MakeLan(int hosts, LinkProps link) {
  DPC_CHECK(hosts >= 2);
  LanFixture lan;
  lan.switch_node = lan.graph.AddNode();
  for (int i = 0; i < hosts; ++i) {
    NodeId h = lan.graph.AddNode();
    lan.hosts.push_back(h);
    DPC_CHECK(lan.graph.AddLink(lan.switch_node, h, link).ok());
  }
  lan.dhcp_server = lan.hosts.back();
  lan.graph.ComputeRoutes();
  return lan;
}

Status InstallArpState(System& system, const LanFixture& lan) {
  for (size_t i = 0; i < lan.hosts.size(); ++i) {
    NodeId h = lan.hosts[i];
    // Every host knows its switch.
    DPC_RETURN_NOT_OK(system.InsertSlowTuple(
        Tuple::Make("uplink", h, {Value::Int(lan.switch_node)})));
    // The switch knows which host owns each IP.
    DPC_RETURN_NOT_OK(system.InsertSlowTuple(
        Tuple::Make("owner", lan.switch_node,
                    {Value::Int(LanIpOfHost(static_cast<int>(i))),
                     Value::Int(h)})));
    // Each host knows its own MAC binding.
    DPC_RETURN_NOT_OK(system.InsertSlowTuple(Tuple::Make(
        "macOf", h,
        {Value::Int(LanIpOfHost(static_cast<int>(i))),
         Value::Str(LanMacOfHost(static_cast<int>(i)))})));
  }
  return Status::OK();
}

Status InstallDhcpState(System& system, const LanFixture& lan) {
  for (size_t i = 0; i < lan.hosts.size(); ++i) {
    NodeId h = lan.hosts[i];
    // Hosts relay through the switch; the switch forwards to the server.
    DPC_RETURN_NOT_OK(system.InsertSlowTuple(
        Tuple::Make("relay", h, {Value::Int(lan.switch_node)})));
    // The pool statically binds each MAC to its IP.
    DPC_RETURN_NOT_OK(system.InsertSlowTuple(Tuple::Make(
        "pool", lan.dhcp_server,
        {Value::Str(LanMacOfHost(static_cast<int>(i))),
         Value::Int(LanIpOfHost(static_cast<int>(i)))})));
  }
  DPC_RETURN_NOT_OK(system.InsertSlowTuple(Tuple::Make(
      "dhcpServer", lan.switch_node, {Value::Int(lan.dhcp_server)})));
  return Status::OK();
}

}  // namespace dpc::apps
