#include "src/apps/dns.h"

#include "src/util/logging.h"

namespace dpc::apps {

const char kDnsProgramText[] = R"(
  r1 request(@RT, URL, HST, RQID) :- url(@HST, URL, RQID),
                                     rootServer(@HST, RT).
  r2 request(@SV, URL, HST, RQID) :- request(@X, URL, HST, RQID),
                                     nameServer(@X, DM, SV),
                                     f_isSubDomain(DM, URL) == true.
  r3 dnsResult(@X, URL, IPADDR, HST, RQID) :-
                                     request(@X, URL, HST, RQID),
                                     addressRecord(@X, URL, IPADDR).
  r4 reply(@HST, URL, IPADDR, RQID) :-
                                     dnsResult(@X, URL, IPADDR, HST, RQID).
)";

Result<Program> MakeDnsProgram() {
  ProgramOptions options;
  options.name = "dns-resolution";
  options.relations_of_interest = {"reply"};
  return Program::Parse(kDnsProgramText, std::move(options));
}

Tuple MakeUrlEvent(NodeId client, const std::string& url, int64_t rqid) {
  return Tuple::Make("url", client, {Value::Str(url), Value::Int(rqid)});
}

DnsUniverse MakeDnsUniverse(const DnsParams& params) {
  DPC_CHECK(params.num_servers >= 2);
  DPC_CHECK(params.num_clients >= 0);
  DPC_CHECK(params.num_urls >= 1);
  DPC_CHECK(params.trunk_depth >= 1);

  DnsUniverse u;
  Rng rng(params.seed);

  // Root nameserver: owns the DNS root (empty domain).
  u.root_server = u.graph.AddNode();
  u.servers.push_back(u.root_server);
  u.domains.push_back("");
  u.parents.push_back(-1);
  std::vector<int> depth{0};

  auto add_server = [&](int parent_idx) {
    NodeId n = u.graph.AddNode();
    int idx = static_cast<int>(u.servers.size());
    u.servers.push_back(n);
    u.parents.push_back(parent_idx);
    std::string label = "d" + std::to_string(idx);
    const std::string& parent_domain = u.domains[parent_idx];
    u.domains.push_back(parent_domain.empty() ? label
                                              : label + "." + parent_domain);
    depth.push_back(depth[parent_idx] + 1);
    u.max_depth = std::max(u.max_depth, depth.back());
    DPC_CHECK(u.graph
                  .AddLink(u.servers[parent_idx], n, params.server_link)
                  .ok());
    return idx;
  };

  // A trunk chain first (the paper's tree reaches depth 27), then the
  // remaining servers attach to random existing servers.
  int trunk_len =
      std::min(params.trunk_depth, params.num_servers - 1);
  int prev = 0;
  for (int i = 0; i < trunk_len; ++i) prev = add_server(prev);
  while (static_cast<int>(u.servers.size()) < params.num_servers) {
    add_server(static_cast<int>(rng.NextBelow(u.servers.size())));
  }

  // Client hosts: co-located on distinct non-root nameservers (the paper's
  // topology has 100 nameservers total), or dedicated attached nodes.
  if (params.colocate_clients) {
    DPC_CHECK(params.num_clients <
              static_cast<int>(u.servers.size()));
    std::vector<NodeId> candidates(u.servers.begin() + 1, u.servers.end());
    rng.Shuffle(candidates);
    size_t n_clients = params.num_clients > 0
                           ? static_cast<size_t>(params.num_clients)
                           : candidates.size();
    u.clients.assign(candidates.begin(), candidates.begin() + n_clients);
  } else {
    int n_clients = params.num_clients > 0 ? params.num_clients : 10;
    for (int c = 0; c < n_clients; ++c) {
      NodeId n = u.graph.AddNode();
      u.clients.push_back(n);
      NodeId attach = u.servers[rng.NextBelow(u.servers.size())];
      DPC_CHECK(u.graph.AddLink(n, attach, params.client_link).ok());
    }
  }

  // URLs hosted by random non-root servers.
  for (int k = 0; k < params.num_urls; ++k) {
    int holder =
        1 + static_cast<int>(rng.NextBelow(u.servers.size() - 1));
    const std::string& dom = u.domains[holder];
    std::string url = "www" + std::to_string(k);
    if (!dom.empty()) url += "." + dom;
    u.urls.push_back(url);
    u.url_holders.push_back(holder);
  }

  u.graph.ComputeRoutes();
  DPC_CHECK(u.graph.IsConnected());
  return u;
}

Status InstallDnsState(System& system, const DnsUniverse& u) {
  // rootServer(@client, root) at every client.
  for (NodeId client : u.clients) {
    DPC_RETURN_NOT_OK(system.InsertSlowTuple(Tuple::Make(
        "rootServer", client, {Value::Int(u.root_server)})));
  }
  // nameServer(@parent, child_domain, child) delegations.
  for (size_t i = 0; i < u.servers.size(); ++i) {
    int parent = u.parents[i];
    if (parent < 0) continue;
    DPC_RETURN_NOT_OK(system.InsertSlowTuple(
        Tuple::Make("nameServer", u.servers[parent],
                    {Value::Str(u.domains[i]), Value::Int(u.servers[i])})));
  }
  // addressRecord(@holder, url, ip).
  for (size_t k = 0; k < u.urls.size(); ++k) {
    NodeId holder = u.servers[u.url_holders[k]];
    int64_t ip = 0x0A000000 + static_cast<int64_t>(k);  // 10.0.0.k
    DPC_RETURN_NOT_OK(system.InsertSlowTuple(Tuple::Make(
        "addressRecord", holder, {Value::Str(u.urls[k]), Value::Int(ip)})));
  }
  return Status::OK();
}

std::vector<size_t> ZipfUrlSequence(const DnsUniverse& u, size_t count,
                                    double theta, uint64_t seed) {
  ZipfGenerator zipf(u.urls.size(), theta, seed);
  std::vector<size_t> seq;
  seq.reserve(count);
  for (size_t i = 0; i < count; ++i) seq.push_back(zipf.Next());
  return seq;
}

}  // namespace dpc::apps
