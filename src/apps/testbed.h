// Testbed: wires up one complete deployment — program + topology + event
// queue + network + provenance recorder + runtime — for a chosen
// maintenance scheme. Tests, benches and examples all build on this.
#ifndef DPC_APPS_TESTBED_H_
#define DPC_APPS_TESTBED_H_

#include <memory>
#include <string>

#include "src/core/advanced_recorder.h"
#include "src/core/basic_recorder.h"
#include "src/core/exspan_recorder.h"
#include "src/core/query.h"
#include "src/core/reference_recorder.h"
#include "src/core/wal_recorder.h"
#include "src/net/shard_engine.h"
#include "src/net/transport.h"
#include "src/runtime/system.h"

namespace dpc::apps {

enum class Scheme {
  kReference,          // ship whole trees inline (ground truth / ablation)
  kExspan,             // uncompressed baseline (§2.2)
  kBasic,              // intra-tree optimization (§4)
  kAdvanced,           // equivalence-based compression (§5.3)
  kAdvancedInterClass  // + inter-equivalence-class sharing (§5.4)
};

const char* SchemeName(Scheme scheme);

// Deployment knobs beyond the scheme choice: query cost model, fault
// injection on the runtime network, and reliable delivery on top of it.
struct TestbedOptions {
  QueryCostModel query_cost;
  // Uniform per-traversal loss probability on the runtime network
  // (Network::SetLossRate); 0 = lossless.
  double loss_rate = 0;
  uint64_t loss_seed = 1;
  // When true the System sends through a ReliableTransport (ack /
  // retransmit / dedup) instead of the raw network, so the run converges
  // to the loss-free outputs even under injected faults.
  bool reliable_transport = false;
  TransportOptions transport;

  // Number of runtime shards (src/net/shard_engine.h). 1 = the classic
  // single-threaded queue (no engine at all). N > 1 partitions the nodes
  // into N contiguous blocks, each driven by its own worker thread under
  // conservative lookahead windows; results (outputs, provenance tables,
  // bandwidth accounting) are byte-identical to shards = 1. Clamped to 1
  // when the topology has no usable cross-shard lookahead (a zero-latency
  // cross-shard link). Reliable transport is shard-safe: retransmission
  // timers live on the sending node's shard queue (src/net/transport.h).
  int shards = 1;

  // --- durability (src/core/wal_recorder.h) --------------------------
  // When non-empty, a WalRecorder wraps the scheme's recorder and logs
  // every mutation to per-node WAL files under this directory (which must
  // exist). Checkpoints and crash recovery go through Testbed::wal().
  // Not supported for Scheme::kReference (it has no node-state
  // serialization) — Create fails.
  std::string wal_dir;
  // fsync every WAL record (survive power loss, not just a killed
  // process). Slow; off by default.
  bool wal_sync = false;
  // Group-commit: buffer WAL appends and flush only at checkpoints and
  // shutdown. Much cheaper than the default flush-per-record, but a
  // kill -9 loses the buffered tail — recovery then reconstructs a
  // consistent prefix of the run rather than everything acknowledged.
  bool wal_buffered = false;

  // Set-at-a-time batch evaluation (System::SetBatchEval): same-instant,
  // same-(node, relation) events evaluate each rule plan once per batch.
  // On by default; results are byte-identical either way (docs/perf.md),
  // so this knob exists for differential testing and benchmarking.
  bool batch_eval = true;

  // --- observability (src/obs) ---------------------------------------
  // When non-empty, the process tracer records this deployment (bound to
  // its event queue's simulated clock) and the Testbed writes the
  // Chrome-trace JSON here on FlushTrace() / destruction. Only one
  // deployment can be traced at a time: the tracer is process-wide.
  std::string trace_path;
  // Enable tracing without a file (events stay in memory, readable via
  // dpc::Trace().events() or exported by the caller).
  bool trace = false;
  size_t trace_max_events = 2000000;
  // Capture a metrics baseline at creation so MetricsDelta() isolates
  // this deployment's activity from earlier runs in the process.
  bool metrics = true;
};

// The three schemes the paper's evaluation compares, in its order.
inline constexpr Scheme kPaperSchemes[] = {Scheme::kExspan, Scheme::kBasic,
                                           Scheme::kAdvanced};

class Testbed {
 public:
  // `topology` must outlive the Testbed; `program` is copied in.
  static Result<std::unique_ptr<Testbed>> Create(
      Program program, const Topology* topology, Scheme scheme,
      QueryCostModel query_cost = {});
  static Result<std::unique_ptr<Testbed>> Create(Program program,
                                                 const Topology* topology,
                                                 Scheme scheme,
                                                 TestbedOptions options);

  Scheme scheme() const { return scheme_; }
  const Program& program() const { return program_; }
  System& system() { return *system_; }
  EventQueue& queue() { return queue_; }
  Network& network() { return network_; }
  // Effective shard count after clamping (1 = no engine).
  int shards() const { return shards_; }
  // Null when shards() == 1.
  ShardEngine* shard_engine() { return engine_.get(); }
  // Schedules `fn` at simulated time `t` as a global action: on the
  // sharded engine it runs at a window barrier after everything earlier
  // than `t`, alone; unsharded it is a plain queue event. Use for
  // snapshots and fault flips that read or mutate cross-shard state.
  void ScheduleGlobal(SimTime t, std::function<void()> fn);
  // Null unless TestbedOptions::reliable_transport was set.
  ReliableTransport* transport() { return transport_.get(); }
  const TestbedOptions& options() const { return options_; }
  const Topology& topology() const { return *topology_; }
  // The scheme's recorder (the WAL decorator's inner when wal_dir is set).
  ProvenanceRecorder& recorder() { return *recorder_; }
  // Null unless TestbedOptions::wal_dir was set. Checkpoint() and
  // Recover() must run while the deployment is idle or at a
  // ScheduleGlobal barrier.
  WalRecorder* wal() { return wal_.get(); }

  // Typed access; nullptr when the scheme does not match.
  ReferenceRecorder* reference() { return reference_; }
  ExspanRecorder* exspan() { return exspan_; }
  BasicRecorder* basic() { return basic_; }
  AdvancedRecorder* advanced() { return advanced_; }

  // A querier for the scheme's storage; nullptr for kReference (its trees
  // are read directly).
  std::unique_ptr<ProvenanceQuerier> MakeQuerier() const;

  StorageBreakdown TotalStorage() const {
    return recorder_->TotalStorage(topology_->num_nodes());
  }
  StorageBreakdown StorageAt(NodeId node) const {
    return recorder_->StorageAt(node);
  }

  // True when this testbed enabled the process tracer.
  bool tracing() const { return tracing_; }
  // Writes the recorded trace to options.trace_path (no-op Status when
  // tracing is off or no path was configured). Also called on
  // destruction, which additionally disables the tracer so its clock
  // cannot dangle into the destroyed queue.
  Status FlushTrace();
  // Metrics recorded since this testbed was created (empty when
  // options.metrics was false).
  MetricsSnapshot MetricsDelta() const;

  ~Testbed();

 private:
  Testbed(Program program, const Topology* topology, Scheme scheme,
          TestbedOptions options);

  Program program_;
  const Topology* topology_;
  Scheme scheme_;
  TestbedOptions options_;
  EventQueue queue_;
  Network network_;
  std::unique_ptr<ReliableTransport> transport_;
  std::unique_ptr<ProvenanceRecorder> recorder_;
  // Destroyed before recorder_ (declared after): the decorator holds a
  // raw pointer to the scheme recorder it wraps.
  std::unique_ptr<WalRecorder> wal_;
  ReferenceRecorder* reference_ = nullptr;
  ExspanRecorder* exspan_ = nullptr;
  BasicRecorder* basic_ = nullptr;
  AdvancedRecorder* advanced_ = nullptr;
  std::unique_ptr<System> system_;
  // Declared after system_/network_ users but destroyed first: the
  // destructor joins the worker threads while queue_ (shard 0) and the
  // handlers they run are still alive.
  std::unique_ptr<ShardEngine> engine_;
  int shards_ = 1;
  bool tracing_ = false;
  bool trace_flushed_ = false;
  MetricsSnapshot metrics_baseline_;
};

}  // namespace dpc::apps

#endif  // DPC_APPS_TESTBED_H_
