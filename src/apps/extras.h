// Additional DELP applications the paper names as expressible in the model
// (§3.1): Address Resolution Protocol (ARP) and Dynamic Host Configuration
// Protocol (DHCP), both simplified to their request/response cores.
//
// ARP: a host asks its switch for the MAC address owning an IP; the switch
// forwards to the owning host, which replies.
//
//   a1 arpReq(@SW, IP, H)    :- arpQuery(@H, IP), uplink(@H, SW).
//   a2 arpReq(@OW, IP, H)    :- arpReq(@SW, IP, H), owner(@SW, IP, OW).
//   a3 arpReply(@H, IP, MAC) :- arpReq(@OW, IP, H), macOf(@OW, IP, MAC).
//
// DHCP: a discover is relayed to the DHCP server, which offers the address
// bound to the client's MAC.
//
//   d1 dhcpReq(@R, MAC, H)    :- dhcpDiscover(@H, MAC), relay(@H, R).
//   d2 dhcpReq(@S, MAC, H)    :- dhcpReq(@R, MAC, H), dhcpServer(@R, S).
//   d3 dhcpOffer(@H, MAC, IP) :- dhcpReq(@S, MAC, H), pool(@S, MAC, IP).
#ifndef DPC_APPS_EXTRAS_H_
#define DPC_APPS_EXTRAS_H_

#include <string>

#include "src/ndlog/program.h"
#include "src/runtime/system.h"

namespace dpc::apps {

extern const char kArpProgramText[];
extern const char kDhcpProgramText[];

// arpReply is of interest. Equivalence keys: (arpQuery:0, arpQuery:1).
Result<Program> MakeArpProgram();

// dhcpOffer is of interest. Equivalence keys: (dhcpDiscover:0,
// dhcpDiscover:1).
Result<Program> MakeDhcpProgram();

Tuple MakeArpQuery(NodeId host, int64_t ip);
Tuple MakeArpReply(NodeId host, int64_t ip, const std::string& mac);
Tuple MakeDhcpDiscover(NodeId host, const std::string& mac);
Tuple MakeDhcpOffer(NodeId host, const std::string& mac, int64_t ip);

// A small switched LAN: one switch (node 0) with `hosts` hosts attached,
// host i owning IP 100+i / MAC "aa:i". Fills uplink/owner/macOf for ARP and
// relay/dhcpServer/pool for DHCP (the switch doubles as relay; the last
// host doubles as the DHCP server).
struct LanFixture {
  Topology graph;
  NodeId switch_node = 0;
  std::vector<NodeId> hosts;
  NodeId dhcp_server = kNullNode;
};

LanFixture MakeLan(int hosts, LinkProps link = LinkProps{0.001, 100e6});

Status InstallArpState(System& system, const LanFixture& lan);
Status InstallDhcpState(System& system, const LanFixture& lan);

// The IP / MAC conventions used by the fixtures.
int64_t LanIpOfHost(int host_index);
std::string LanMacOfHost(int host_index);

}  // namespace dpc::apps

#endif  // DPC_APPS_EXTRAS_H_
